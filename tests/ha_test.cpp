// High-availability subsystem tests (src/ha, docs/RECOVERY.md).
//
// Five layers of contract over a kill-and-recover run:
//   1. detector timing — suspect/confirm latencies follow the FaultProfile's
//      virtual-time constants exactly (trace-event deltas);
//   2. backup promotion — the dead node's home zone moves to its ring
//      successor, the epoch bumps, and shared state homed on the dead node
//      stays readable and exact through the failover;
//   3. monitor-table recovery — synchronized updates against an object homed
//      on the crashed node lose nothing (the lost-update litmus, with the
//      monitor's home failing over mid-run);
//   4. restart/rejoin — the crashed node comes back without home authority
//      and resumes as a cacher;
//   5. determinism — a same-seed kill-and-recover run is byte-identical
//      (tests/goldens/recovery_golden.txt; re-record only after a semantic
//      change, with HYP_UPDATE_GOLDENS=1 ./ha_tests).
//
// The workload: the Java main thread migrates to the to-be-crashed node,
// allocates the shared counter there (allocation home = allocating thread's
// node), migrates back, and then six workers hammer it with synchronized
// increments while the node dies and recovers underneath them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/trace.hpp"
#include "dsm/access.hpp"
#include "ha/ha.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"
#include "sim/engine.hpp"

namespace hyp::ha {
namespace {

using cluster::TraceEvent;
using cluster::TraceKind;

constexpr cluster::NodeId kCrashNode = 2;
constexpr int kNodes = 4;
constexpr int kWorkers = 6;
constexpr int kIncrements = 40;
constexpr std::int64_t kExpected = std::int64_t{kWorkers} * kIncrements;

struct HaRunResult {
  std::int64_t counter = -1;
  Time elapsed = 0;
  Stats stats;
  std::uint64_t events_processed = 0;
  std::uint64_t context_switches = 0;
  std::vector<TraceEvent> trace;
  // Post-run HA state.
  std::uint64_t epoch = 0;
  std::uint64_t promotions = 0;  // confirmed failures handled
  cluster::NodeId promoted_for = -1;
  cluster::NodeId zone2_home = -1;
  bool backup_is_home = false;   // backup's presence says "home" for the page
  bool crashed_is_home = true;   // crashed node's presence, after rejoin
  bool elected_is_home = false;  // current elected home's presence for the page
  dsm::Gva counter_addr = 0;
};

// One kill-and-recover run of the shared-counter workload. The crash window
// (1ms + 800us) opens while the workers are mid-increment and closes before
// they finish, so the run crosses crash -> suspect -> confirm -> promote ->
// restart -> rejoin in-band.
HaRunResult run_counter_with_crash(dsm::ProtocolKind kind, const std::string& profile) {
  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.cluster.fault = cluster::FaultProfile::parse(profile);
  cfg.nodes = kNodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  cluster::TraceLog trace(1 << 16);
  cfg.trace = &trace;

  hyperion::HyperionVM vm(cfg);
  HaRunResult out;
  dsm::with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](hyperion::JavaEnv& main) {
      // Home the shared counter on the node that is about to die.
      main.migrate_to(kCrashNode);
      auto counter = main.new_cell<std::int64_t>(0);
      out.counter_addr = counter.addr;
      main.migrate_to(0);
      std::vector<hyperion::JThread> workers;
      for (int w = 0; w < kWorkers; ++w) {
        workers.push_back(
            main.start_thread("w" + std::to_string(w), [=](hyperion::JavaEnv& env) {
              hyperion::Mem<P> mem(env.ctx());
              for (int i = 0; i < kIncrements; ++i) {
                env.synchronized(counter.addr,
                                 [&] { mem.put(counter, mem.get(counter) + 1); });
              }
            }));
      }
      for (auto& w : workers) main.join(w);
      hyperion::Mem<P> mem(main.ctx());
      out.counter = mem.get(counter);
    });
  });

  out.elapsed = vm.elapsed();
  out.stats = vm.stats();
  out.events_processed = vm.cluster().engine().events_processed();
  out.context_switches = vm.cluster().engine().context_switches();
  out.trace = trace.events();
  EXPECT_NE(vm.ha(), nullptr) << "crash profile must engage the HA subsystem";
  if (vm.ha() == nullptr) return out;
  out.epoch = vm.ha()->epoch();
  out.promotions = vm.ha()->promotions();
  out.promoted_for = vm.ha()->promoted_for();
  out.zone2_home = vm.ha()->home_node(kCrashNode);
  const dsm::PageId page = vm.dsm().layout().page_of(out.counter_addr);
  out.backup_is_home = vm.dsm().node_dsm(vm.ha()->backup_of(kCrashNode)).is_home(page);
  out.crashed_is_home = vm.dsm().node_dsm(kCrashNode).is_home(page);
  out.elected_is_home = vm.dsm().node_dsm(out.zone2_home).is_home(page);
  return out;
}

// First trace event of `kind`; fails the test when absent.
const TraceEvent* find_event(const std::vector<TraceEvent>& events, TraceKind kind) {
  for (const TraceEvent& e : events) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

std::uint64_t count_events(const std::vector<TraceEvent>& events, TraceKind kind) {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

constexpr const char* kCrashProfile = "crash2@1ms+800us,seed=7";

// --- 1. detector timing -----------------------------------------------------

TEST(HaDetector, SuspectAndConfirmFollowConfiguredTimeouts) {
  // Explicit tunables so the timing assertions are self-contained.
  HaRunResult r = run_counter_with_crash(
      dsm::ProtocolKind::kJavaPf,
      "crash2@1ms+800us,hb=50us,suspect=200us,confirm=600us,seed=7");
  const TraceEvent* crash = find_event(r.trace, TraceKind::kNodeCrash);
  const TraceEvent* suspected = find_event(r.trace, TraceKind::kHaSuspected);
  const TraceEvent* confirmed = find_event(r.trace, TraceKind::kHaDeadConfirmed);
  ASSERT_NE(crash, nullptr);
  ASSERT_NE(suspected, nullptr);
  ASSERT_NE(confirmed, nullptr);
  EXPECT_EQ(crash->node, kCrashNode);
  EXPECT_EQ(crash->at, 1 * kMillisecond);
  // The watcher is the ring successor. Silence is measured from the last
  // heartbeat *before* the crash (up to hb_interval earlier than the crash
  // itself) and verdicts land on the tick grid (up to hb_interval later), so
  // each crash-relative latency is its timeout +/- one hb_interval.
  EXPECT_EQ(suspected->node, kCrashNode + 1);
  EXPECT_EQ(suspected->a, kCrashNode);
  EXPECT_GE(suspected->at - crash->at, 150 * kMicrosecond);
  EXPECT_LE(suspected->at - crash->at, 250 * kMicrosecond);
  EXPECT_EQ(confirmed->node, kCrashNode + 1);
  EXPECT_EQ(confirmed->a, kCrashNode);
  EXPECT_GE(confirmed->at - crash->at, 550 * kMicrosecond);
  EXPECT_LE(confirmed->at - crash->at, 650 * kMicrosecond);
  // Exactly one failure, handled once.
  EXPECT_EQ(count_events(r.trace, TraceKind::kHomePromoted), 1u);
  EXPECT_EQ(count_events(r.trace, TraceKind::kEpochBump), 1u);
  // Heartbeats flowed the whole run.
  EXPECT_GT(r.stats.get(Counter::kHaHeartbeats), 0u);
}

TEST(HaDetector, CoalescedSweepRecoversLikePerNodeChains) {
  // hbcoalesce=1 forces the single self-chaining sweep (the >= 64-node
  // detector, docs/SCALING.md); hbcoalesce=0 forces the historical per-node
  // heartbeat chains. Event counts differ by design, but the recovery
  // outcome must not.
  const std::string base = "crash2@1ms+800us,seed=7,hbcoalesce=";
  HaRunResult chains = run_counter_with_crash(dsm::ProtocolKind::kJavaPf, base + "0");
  HaRunResult swept = run_counter_with_crash(dsm::ProtocolKind::kJavaPf, base + "1");
  EXPECT_EQ(chains.counter, kExpected);
  EXPECT_EQ(swept.counter, kExpected);
  EXPECT_EQ(swept.promotions, chains.promotions);
  EXPECT_EQ(swept.promoted_for, chains.promoted_for);
  EXPECT_EQ(swept.epoch, chains.epoch);
  EXPECT_EQ(swept.zone2_home, chains.zone2_home);
  EXPECT_GT(chains.stats.get(Counter::kHaHeartbeats), 0u);
  EXPECT_GT(swept.stats.get(Counter::kHaHeartbeats), 0u);
}

// --- 2+3. promotion, epoch invalidation, monitor-table recovery -------------

TEST(HaRecovery, CounterHomedOnCrashedNodeIsExactUnderBothProtocols) {
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r = run_counter_with_crash(kind, kCrashProfile);
    // The lost-update litmus across a home failure: nothing lost, nothing
    // double-applied (monitor op ids absorb replayed grant requests).
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    // The failure was real and handled.
    EXPECT_EQ(r.promoted_for, kCrashNode) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 1u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.stats.get(Counter::kHaPromotions), 1u) << dsm::protocol_name(kind);
    // At least one blocked caller re-routed to the promoted home.
    EXPECT_GT(r.stats.get(Counter::kHaReroutes), 0u) << dsm::protocol_name(kind);
    // Recovery latency histogram: exactly one promotion, between the confirm
    // timeout (minus one heartbeat of pre-crash silence) and the crash
    // duration.
    const auto& h = r.stats.hist(Hist::kRecoveryLatency);
    ASSERT_EQ(h.count(), 1u) << dsm::protocol_name(kind);
    EXPECT_GE(h.min(), 550 * kMicrosecond) << dsm::protocol_name(kind);
    EXPECT_LE(h.max(), 800 * kMicrosecond) << dsm::protocol_name(kind);
  }
}

// --- 4. restart / rejoin ----------------------------------------------------

TEST(HaRecovery, RestartedNodeRejoinsAsCacherHomeStaysAtBackup) {
  HaRunResult r = run_counter_with_crash(dsm::ProtocolKind::kJavaPf, kCrashProfile);
  // Routing: the dead zone moved to the ring successor and stays there.
  EXPECT_EQ(r.zone2_home, kCrashNode + 1);
  // Presence: the backup holds the zone's pages as home; the restarted node
  // demoted its copies (it may re-cache them, but without home authority).
  EXPECT_TRUE(r.backup_is_home);
  EXPECT_FALSE(r.crashed_is_home);
  // The rejoin actually happened in-band (the run outlived the window).
  EXPECT_EQ(count_events(r.trace, TraceKind::kNodeRestart), 1u);
  EXPECT_EQ(count_events(r.trace, TraceKind::kHaRejoined), 1u);
  const TraceEvent* rejoined = find_event(r.trace, TraceKind::kHaRejoined);
  ASSERT_NE(rejoined, nullptr);
  EXPECT_EQ(rejoined->node, kCrashNode);
  EXPECT_EQ(rejoined->at, 1 * kMillisecond + 800 * kMicrosecond);
  EXPECT_GT(r.elapsed, rejoined->at);  // workers finished after the rejoin
}

// --- 5. multi-failure matrix (K-replica chain backups) -----------------------
//
// With replicas=K every home's state is mirrored by its K ring successors in
// chain order, and a run tolerates any crash schedule in which no zone loses
// all K+1 copies at once (docs/RECOVERY.md).

// Two sequential failures: node 2 dies first (counter zone moves to its first
// chain member, node 3), then node 3 — holding both its own zone and the
// adopted zone 2 — dies too, pushing everything to node 0.
constexpr const char* kMultiCrashProfile =
    "replicas=2,crash2@1ms+800us,crash3@8ms+2ms,seed=7";

TEST(HaMultiFailure, TwoSequentialCrashesWithTwoReplicasRecoverExactly) {
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r = run_counter_with_crash(kind, kMultiCrashProfile);
    // The lost-update litmus across TWO home failures of the same zone.
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    // Two confirmed deaths, two epoch bumps, last one for node 3.
    EXPECT_EQ(r.promotions, 2u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 2u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.promoted_for, 3) << dsm::protocol_name(kind);
    // Zone 2 hopped 2 -> 3 -> 0 (node 0 is the first live member of the dead
    // home 3's chain), and authority followed.
    EXPECT_EQ(r.zone2_home, 0) << dsm::protocol_name(kind);
    EXPECT_TRUE(r.elected_is_home) << dsm::protocol_name(kind);
    EXPECT_FALSE(r.crashed_is_home) << dsm::protocol_name(kind);
    EXPECT_FALSE(r.backup_is_home) << dsm::protocol_name(kind);  // node 3 demoted on rejoin
    // Zone moves: death of 2 moved {zone2}; death of 3 moved {zone2, zone3}.
    EXPECT_EQ(r.stats.get(Counter::kHaPromotions), 3u) << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kHomePromoted), 3u) << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kEpochBump), 2u) << dsm::protocol_name(kind);
    // Both windows closed in-band: two restarts, two rejoins, two recovery
    // latencies observed.
    EXPECT_EQ(count_events(r.trace, TraceKind::kNodeRestart), 2u) << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kHaRejoined), 2u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.stats.hist(Hist::kRecoveryLatency).count(), 2u) << dsm::protocol_name(kind);
    // replicas=2 turns the checkpoint stream into real messages.
    EXPECT_GT(r.stats.get(Counter::kHaCheckpointMsgs), 0u) << dsm::protocol_name(kind);
  }
}

TEST(HaMultiFailure, OverlappingHomeAndFirstBackupCrashesRecoverWithTwoReplicas) {
  // Node 2 AND its first chain member (node 3) are down at the same time.
  // With replicas=2 the second chain member (node 0) still holds the mirror,
  // so both zones elect node 0 and nothing is lost.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r = run_counter_with_crash(
        kind, "replicas=2,crash2@1ms+1ms,crash3@1ms+1ms,seed=7");
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    EXPECT_EQ(r.promotions, 2u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 2u) << dsm::protocol_name(kind);
    // The counter zone skipped the dead first chain member: 2 -> 0 directly.
    EXPECT_EQ(r.zone2_home, 0) << dsm::protocol_name(kind);
    EXPECT_TRUE(r.elected_is_home) << dsm::protocol_name(kind);
    // One zone moved per death (zone 2 off node 2, zone 3 off node 3).
    EXPECT_EQ(r.stats.get(Counter::kHaPromotions), 2u) << dsm::protocol_name(kind);
  }
}

TEST(HaMultiFailureDeath, LosingAllCopiesFailsFastWithDiagnosableError) {
  // replicas=1: node 2's only mirror lives on node 3. A schedule that takes
  // both down at once would silently lose zone 2 — instead the run fails
  // fast at HaManager::start(), before any simulation, naming the node and
  // the remedy. (The schedule is PARSE-valid — distinct nodes may overlap —
  // this check needs the actual cluster size and placement.)
  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.cluster.fault = cluster::FaultProfile::parse("crash2@1ms+1ms,crash3@1ms+1ms,seed=7");
  cfg.nodes = kNodes;
  cfg.protocol = dsm::ProtocolKind::kJavaPf;
  cfg.region_bytes = std::size_t{16} << 20;
  EXPECT_DEATH({ hyperion::HyperionVM vm(cfg); }, "unrecoverable crash schedule");
}

// --- 6. checkpoint stream accounting -----------------------------------------

// Sum / count of traced checkpoint transmissions (TraceKind::kCheckpoint's b
// argument is the full message size in bytes).
std::uint64_t traced_checkpoint_bytes(const std::vector<TraceEvent>& events) {
  std::uint64_t sum = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceKind::kCheckpoint) sum += static_cast<std::uint64_t>(e.b);
  }
  return sum;
}

TEST(HaCheckpointStream, PiggybackAccountingMatchesTracedCheckpoints) {
  // Classic mode (replicas=1, no ckpt_bw): no stream messages, but the
  // counter must still equal the sum of traced checkpoint sizes.
  HaRunResult r = run_counter_with_crash(dsm::ProtocolKind::kJavaPf, kCrashProfile);
  EXPECT_EQ(r.stats.get(Counter::kHaCheckpointMsgs), 0u);
  EXPECT_GT(r.stats.get(Counter::kHaCheckpointBytes), 0u);
  EXPECT_EQ(r.stats.get(Counter::kHaCheckpointBytes), traced_checkpoint_bytes(r.trace));
}

TEST(HaCheckpointStream, StreamedCheckpointBytesMatchTracedMessages) {
  // Modeled stream (replicas=2): checkpoints are real cluster messages —
  // ha_checkpoint_bytes == the exact sum of traced checkpoint message sizes,
  // one kCheckpoint trace per transmitted message, and chain members confirm
  // applies with kCheckpointApplied.
  HaRunResult r = run_counter_with_crash(dsm::ProtocolKind::kJavaPf, kMultiCrashProfile);
  const std::uint64_t msgs = count_events(r.trace, TraceKind::kCheckpoint);
  EXPECT_GT(msgs, 0u);
  EXPECT_EQ(r.stats.get(Counter::kHaCheckpointMsgs), msgs);
  EXPECT_EQ(r.stats.get(Counter::kHaCheckpointBytes), traced_checkpoint_bytes(r.trace));
  // Applies happen (some messages may be dropped against dead chain members
  // or still in flight at quiesce, so applied <= sent).
  const std::uint64_t applied = count_events(r.trace, TraceKind::kCheckpointApplied);
  EXPECT_GT(applied, 0u);
  EXPECT_LE(applied, msgs);
}

TEST(HaCheckpointStream, BandwidthBudgetPacesTheStream) {
  // ckpt_bw alone turns the stream on (even at replicas=1). A tight budget
  // serializes departures through the per-node pacing gate, so the last
  // chain apply lags the last emission far more than under a loose budget.
  auto lag = [](const HaRunResult& r) {
    Time last_sent = 0;
    Time last_applied = 0;
    for (const TraceEvent& e : r.trace) {
      if (e.kind == TraceKind::kCheckpoint) last_sent = e.at;
      if (e.kind == TraceKind::kCheckpointApplied) last_applied = e.at;
    }
    EXPECT_GT(last_sent, 0u);
    EXPECT_GT(last_applied, 0u);
    return last_applied > last_sent ? last_applied - last_sent : Time{0};
  };
  // Loose: a ~25-byte checkpoint costs ~25 ns of budget — the stream never
  // backs up. Tight: the same message costs ~2.5 ms against a ~100 us
  // checkpoint cadence — departures serialize far behind the emissions.
  HaRunResult loose = run_counter_with_crash(dsm::ProtocolKind::kJavaPf,
                                             "ckpt_bw=1000,crash2@1ms+800us,seed=7");
  HaRunResult tight = run_counter_with_crash(dsm::ProtocolKind::kJavaPf,
                                             "ckpt_bw=0.01,crash2@1ms+800us,seed=7");
  EXPECT_GT(loose.stats.get(Counter::kHaCheckpointMsgs), 0u);
  EXPECT_GT(tight.stats.get(Counter::kHaCheckpointMsgs), 0u);
  // Both runs still recover the exact answer.
  EXPECT_EQ(loose.counter, kExpected);
  EXPECT_EQ(tight.counter, kExpected);
  EXPECT_GT(lag(tight), lag(loose));
}

// --- 7. determinism goldens ---------------------------------------------------

// --- 8. partition tolerance: the split-brain matrix (docs/PARTITIONS.md) -----
//
// Same shared-counter workload, but instead of (or on top of) killing the
// home, the network splits. The invariants:
//   - the split-brain oracle: once an epoch bump moves a zone's authority off
//     a node, that node never again applies consistency updates as home;
//   - quorum promotion: a zone's home is re-elected only when the watcher's
//     side holds a strict majority of the cluster AND a majority of the dead
//     home's chain backups voted; even splits park both sides;
//   - exactness: every increment survives the cut and the heal.

// The counter's home (node 2) alone on the minority side; {0,1,3} is a strict
// majority holding the whole replica chain, so it promotes mid-window.
constexpr const char* kMinoritySplitProfile = "partition@1ms+800us:2|0.1.3,seed=7";

// Split-brain oracle over the trace: after the first epoch bump, the stale
// home must not confirm a single consistency apply.
void expect_no_stale_home_applies(const HaRunResult& r, cluster::NodeId stale) {
  const TraceEvent* bump = find_event(r.trace, TraceKind::kEpochBump);
  ASSERT_NE(bump, nullptr);
  for (const TraceEvent& e : r.trace) {
    if (e.kind == TraceKind::kUpdateApplied && e.node == stale) {
      EXPECT_LT(e.at, bump->at)
          << "stale home " << stale << " applied an update after authority moved";
    }
  }
}

TEST(HaPartition, MinorityIsolatedHomePromotesOnMajoritySide) {
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r = run_counter_with_crash(kind, kMinoritySplitProfile);
    // Exactness across cut -> promote -> heal -> rejoin.
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    EXPECT_EQ(r.promoted_for, kCrashNode) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 1u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.zone2_home, kCrashNode + 1) << dsm::protocol_name(kind);
    // The cut was real: packets died on the wire and minority-side callers
    // parked on typed kNoQuorum failures instead of burning retries.
    EXPECT_GT(r.stats.get(Counter::kHaPartitionDrops), 0u) << dsm::protocol_name(kind);
    EXPECT_GT(r.stats.get(Counter::kHaNoQuorumHolds), 0u) << dsm::protocol_name(kind);
    // Both edges of the window traced (open + heal).
    EXPECT_EQ(count_events(r.trace, TraceKind::kHaPartition), 2u)
        << dsm::protocol_name(kind);
    // No crash, no restart — but the partition-confirmed node rejoined via
    // the heal catch-up.
    EXPECT_EQ(count_events(r.trace, TraceKind::kNodeRestart), 0u)
        << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kHaRejoined), 1u)
        << dsm::protocol_name(kind);
    // Recovery latency is crash-scoped; a partition confirm must not record a
    // bogus (now - 0) sample.
    EXPECT_EQ(r.stats.hist(Hist::kRecoveryLatency).count(), 0u)
        << dsm::protocol_name(kind);
    expect_no_stale_home_applies(r, kCrashNode);
  }
}

TEST(HaPartition, EvenSplitParksBothSidesWithoutPromotion) {
  // 0.1|2.3 is a 2/2 split: neither watcher side reaches a strict majority of
  // the cluster, so nobody promotes — both sides park on kNoQuorum and drain
  // at the heal. Split-brain safety by parking.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r =
        run_counter_with_crash(kind, "partition@1ms+800us:0.1|2.3,seed=7");
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 0u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.promotions, 0u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.zone2_home, kCrashNode) << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kEpochBump), 0u)
        << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kHomePromoted), 0u)
        << dsm::protocol_name(kind);
    EXPECT_GT(r.stats.get(Counter::kHaNoQuorumHolds), 0u) << dsm::protocol_name(kind);
  }
}

TEST(HaPartition, HomeOnMajoritySideKeepsAuthorityMinorityParks) {
  // Node 0 (the main thread's node) is the isolated minority; the counter's
  // home keeps serving on the majority side. Node 0's zones fail over to node
  // 1, and node 0's own callers park until the heal.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r =
        run_counter_with_crash(kind, "partition@1ms+800us:0|1.2.3,seed=7");
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    EXPECT_EQ(r.promoted_for, 0) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 1u) << dsm::protocol_name(kind);
    // The counter's zone never moved.
    EXPECT_EQ(r.zone2_home, kCrashNode) << dsm::protocol_name(kind);
    EXPECT_TRUE(r.crashed_is_home) << dsm::protocol_name(kind);
    expect_no_stale_home_applies(r, 0);
  }
}

TEST(HaPartition, PartitionOverlappingCrashDefersConfirmUntilQuorum) {
  // Node 2 crashes at 1ms; at 1.2ms an even split ALSO cuts the watcher
  // (node 3) off from {0,1}. With only itself reachable, the watcher cannot
  // form a promotion quorum — the confirm waits for the 1.6ms heal even
  // though the detector's confirm timeout expired at ~1.6ms anyway... so pin
  // it sharper: silence expires at 1.6ms but reach only returns at the heal,
  // and the confirmed death lands after BOTH.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r = run_counter_with_crash(
        kind, "crash2@1ms+800us,partition@1.2ms+400us:0.1|2.3,seed=7");
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    EXPECT_EQ(r.promoted_for, kCrashNode) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 1u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.zone2_home, kCrashNode + 1) << dsm::protocol_name(kind);
    const TraceEvent* confirmed = find_event(r.trace, TraceKind::kHaDeadConfirmed);
    ASSERT_NE(confirmed, nullptr) << dsm::protocol_name(kind);
    EXPECT_GE(confirmed->at, 1600 * kMicrosecond) << dsm::protocol_name(kind);
    // It is still a crash death: exactly one recovery-latency sample, now
    // stretched past the partition heal.
    const auto& h = r.stats.hist(Hist::kRecoveryLatency);
    ASSERT_EQ(h.count(), 1u) << dsm::protocol_name(kind);
    EXPECT_GE(h.min(), 600 * kMicrosecond) << dsm::protocol_name(kind);
  }
}

TEST(HaPartition, HealThenResplitReconfirmsWithoutDoubleHome) {
  // The minority split promotes (epoch 1), heals (node 2 rejoins as a
  // cacher), then a second window isolates node 2 again. The detector
  // re-confirms it (epoch 2) but no zone moves — its authority already lives
  // at node 3 — and the answer stays exact through both cycles.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    // The second window must outlive the detector's confirm timeout (600us)
    // or the re-isolation heals before it can be re-confirmed.
    HaRunResult r = run_counter_with_crash(
        kind, "partition@1ms+800us:2|0.1.3,partition@2.5ms+900us:2|0.1.3,seed=7");
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 2u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.zone2_home, kCrashNode + 1) << dsm::protocol_name(kind);
    // One zone move total (the first confirm); the re-confirm had nothing to
    // move.
    EXPECT_EQ(r.stats.get(Counter::kHaPromotions), 1u) << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kHaRejoined), 2u)
        << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kHaPartition), 4u)
        << dsm::protocol_name(kind);
    expect_no_stale_home_applies(r, kCrashNode);
  }
}

TEST(HaPartition, QuorumReadsServeSuspectedHomeWindow) {
  // A majority-side reader fetches a page homed on the isolated node DURING
  // the suspected-but-unconfirmed window (~[1.2ms, 1.6ms)): the read is
  // served by quorum from the home's chain backups instead of waiting out
  // the detector. The lock object is homed on node 0 so the monitor path
  // stays on the majority side.
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    hyperion::VmConfig cfg;
    cfg.cluster = cluster::ClusterParams::myrinet200();
    cfg.cluster.fault = cluster::FaultProfile::parse(kMinoritySplitProfile);
    cfg.nodes = kNodes;
    cfg.protocol = kind;
    cfg.region_bytes = std::size_t{16} << 20;
    cluster::TraceLog trace(1 << 16);
    cfg.trace = &trace;

    hyperion::HyperionVM vm(cfg);
    std::int64_t pre = 0;
    std::int64_t during = 0;
    dsm::Gva data_addr = 0;
    dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      vm.run_main([&](hyperion::JavaEnv& main) {
        main.migrate_to(kCrashNode);
        auto data = main.new_cell<std::int64_t>(41);
        data_addr = data.addr;
        main.migrate_to(0);
        auto lock = main.new_cell<std::int64_t>(0);
        auto reader =
            main.start_thread("reader", [&, data, lock](hyperion::JavaEnv& env) {
              env.migrate_to(1);
              hyperion::Mem<P> mem(env.ctx());
              // Warm read before the cut: an ordinary remote fetch.
              env.synchronized(lock.addr, [&] { pre = mem.get(data); });
              // Land the second fetch inside the suspect window. The acquire
              // invalidates the cached copy, forcing a real re-fetch.
              sim::Engine::current()->sleep_until(1300 * kMicrosecond);
              env.synchronized(lock.addr, [&] { during = mem.get(data); });
            });
        main.join(reader);
      });
    });
    EXPECT_EQ(pre, 41) << dsm::protocol_name(kind);
    EXPECT_EQ(during, 41) << dsm::protocol_name(kind);
    EXPECT_GE(vm.stats().get(Counter::kHaQuorumReads), 1u) << dsm::protocol_name(kind);
    const TraceEvent* qr = find_event(trace.events(), TraceKind::kHaQuorumRead);
    ASSERT_NE(qr, nullptr) << dsm::protocol_name(kind);
    EXPECT_EQ(qr->node, 1) << dsm::protocol_name(kind);  // the reader's node
    EXPECT_EQ(qr->a, static_cast<std::int64_t>(vm.dsm().layout().page_of(data_addr)))
        << dsm::protocol_name(kind);
    EXPECT_EQ(qr->b, kCrashNode + 1) << dsm::protocol_name(kind);  // chain backup
  }
}

// Satellite of the same robustness story: node 0 hosts the Java main thread,
// and killing it used to be rejected at parse time. Under the
// thread-checkpoint model its fibers freeze through the window like any other
// node's, its zones fail over to node 1, and the run recovers exactly.
TEST(HaRecovery, KillNodeZeroAndRecover) {
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult r = run_counter_with_crash(kind, "crash0@1ms+800us,seed=7");
    EXPECT_EQ(r.counter, kExpected) << dsm::protocol_name(kind);
    EXPECT_EQ(r.promoted_for, 0) << dsm::protocol_name(kind);
    EXPECT_EQ(r.epoch, 1u) << dsm::protocol_name(kind);
    // The counter's zone (node 2) never moved; node 0's own zone did.
    EXPECT_EQ(r.zone2_home, kCrashNode) << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kNodeRestart), 1u)
        << dsm::protocol_name(kind);
    EXPECT_EQ(count_events(r.trace, TraceKind::kHaRejoined), 1u)
        << dsm::protocol_name(kind);
  }
}

#ifndef HYP_RECOVERY_GOLDEN_FILE
#error "HYP_RECOVERY_GOLDEN_FILE must point at the recorded goldens"
#endif

std::string golden_line(dsm::ProtocolKind kind, const HaRunResult& r) {
  std::uint64_t value_bits = 0;
  const double value = static_cast<double>(r.counter);
  static_assert(sizeof(value_bits) == sizeof(value));
  std::memcpy(&value_bits, &value, sizeof(value_bits));
  std::ostringstream os;
  os << "counter_crash " << dsm::protocol_name(kind) << " n" << kNodes
     << " value_bits=" << value_bits << " elapsed=" << r.elapsed
     << " events=" << r.events_processed << " switches=" << r.context_switches;
  for (const auto& [name, v] : r.stats.nonzero()) os << ' ' << name << '=' << v;
  return os.str();
}

// Determinism under partitions: a same-seed minority-split run must be
// byte-identical (the hash-derived drops, the detector's tick grid and the
// heal catch-up are all virtual-time-deterministic).
TEST(HaPartitionGolden, SameSeedPartitionRunIsBitIdentical) {
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult a = run_counter_with_crash(kind, kMinoritySplitProfile);
    HaRunResult b = run_counter_with_crash(kind, kMinoritySplitProfile);
    EXPECT_EQ(golden_line(kind, a), golden_line(kind, b))
        << "same-seed partition rerun diverged (" << dsm::protocol_name(kind) << ")";
  }
}

TEST(HaRecoveryGolden, SameSeedKillAndRecoverIsBitIdentical) {
  std::vector<std::string> lines;
  std::map<std::string, std::string> actual;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    // Two same-seed runs inside this binary must agree before either is
    // compared to the recorded golden.
    HaRunResult a = run_counter_with_crash(kind, kCrashProfile);
    HaRunResult b = run_counter_with_crash(kind, kCrashProfile);
    const std::string line = golden_line(kind, a);
    ASSERT_EQ(line, golden_line(kind, b)) << "same-seed rerun diverged";
    lines.push_back(line);
    actual[std::string("counter_crash ") + dsm::protocol_name(kind)] = line;
  }

  if (std::getenv("HYP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(HYP_RECOVERY_GOLDEN_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << HYP_RECOVERY_GOLDEN_FILE;
    out << "# Recovery goldens: shared-counter workload (6 workers x 40\n"
           "# synchronized increments, counter homed on node 2) on myri200 x4\n"
           "# under crash2@1ms+800us,seed=7, both protocols. A same-seed\n"
           "# kill-and-recover run must stay byte-identical; re-record with\n"
           "# HYP_UPDATE_GOLDENS=1 ./ha_tests and justify the semantic change\n"
           "# in the commit message.\n";
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "goldens re-recorded at " << HYP_RECOVERY_GOLDEN_FILE;
  }

  std::ifstream in(HYP_RECOVERY_GOLDEN_FILE);
  ASSERT_TRUE(in.good()) << "missing goldens; record with HYP_UPDATE_GOLDENS=1";
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string a, b;
    is >> a >> b;
    expected[a + ' ' + b] = line;
  }
  ASSERT_EQ(expected.size(), actual.size()) << "golden file is stale";
  for (const auto& [key, want] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "no run for golden point " << key;
    EXPECT_EQ(it->second, want)
        << "kill-and-recover drifted at " << key << "\n  expected: " << want
        << "\n  actual:   " << it->second;
  }
}

#ifndef HYP_MULTI_RECOVERY_GOLDEN_FILE
#error "HYP_MULTI_RECOVERY_GOLDEN_FILE must point at the recorded goldens"
#endif

// Multi-failure twin of the golden above: two sequential crashes under
// replicas=2 (chain backups + streamed checkpoints). Pins the K-replica
// election order, the checkpoint message stream and the update op-id wire
// format in one line per protocol.
TEST(HaMultiRecoveryGolden, SameSeedMultiKillRunIsBitIdentical) {
  std::vector<std::string> lines;
  std::map<std::string, std::string> actual;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    HaRunResult a = run_counter_with_crash(kind, kMultiCrashProfile);
    HaRunResult b = run_counter_with_crash(kind, kMultiCrashProfile);
    const std::string line = golden_line(kind, a);
    ASSERT_EQ(line, golden_line(kind, b)) << "same-seed rerun diverged";
    lines.push_back(line);
    actual[std::string("counter_crash ") + dsm::protocol_name(kind)] = line;
  }

  if (std::getenv("HYP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(HYP_MULTI_RECOVERY_GOLDEN_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << HYP_MULTI_RECOVERY_GOLDEN_FILE;
    out << "# Multi-failure recovery goldens: shared-counter workload (6 workers\n"
           "# x 40 synchronized increments, counter homed on node 2) on myri200\n"
           "# x4 under replicas=2,crash2@1ms+800us,crash3@8ms+2ms,seed=7, both\n"
           "# protocols. Two sequential crashes must recover the exact answer\n"
           "# byte-identically; re-record with HYP_UPDATE_GOLDENS=1 ./ha_tests\n"
           "# and justify the semantic change in the commit message.\n";
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "goldens re-recorded at " << HYP_MULTI_RECOVERY_GOLDEN_FILE;
  }

  std::ifstream in(HYP_MULTI_RECOVERY_GOLDEN_FILE);
  ASSERT_TRUE(in.good()) << "missing goldens; record with HYP_UPDATE_GOLDENS=1";
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string a, b;
    is >> a >> b;
    expected[a + ' ' + b] = line;
  }
  ASSERT_EQ(expected.size(), actual.size()) << "golden file is stale";
  for (const auto& [key, want] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "no run for golden point " << key;
    EXPECT_EQ(it->second, want)
        << "multi-kill recovery drifted at " << key << "\n  expected: " << want
        << "\n  actual:   " << it->second;
  }
}

}  // namespace
}  // namespace hyp::ha
