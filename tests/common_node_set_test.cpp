// NodeSet: O(1) membership with deterministic insertion-order iteration —
// the structure behind the erc sharer lists and the seqc directory copyset.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/node_set.hpp"

namespace hyp {
namespace {

TEST(NodeSet, InsertDedupsAndKeepsInsertionOrder) {
  NodeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(5));  // duplicate: ignored, order unchanged
  EXPECT_TRUE(s.insert(900));
  EXPECT_TRUE(s.insert(0));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.items(), (std::vector<int>{5, 1, 900, 0}));
}

TEST(NodeSet, ContainsIsExactAcrossSparseIds) {
  NodeSet s;
  for (int id : {0, 63, 64, 127, 128, 4095}) s.insert(id);
  for (int id : {0, 63, 64, 127, 128, 4095}) EXPECT_TRUE(s.contains(id)) << id;
  for (int id : {1, 62, 65, 126, 129, 4094, 4096, 1 << 20}) {
    EXPECT_FALSE(s.contains(id)) << id;
  }
}

TEST(NodeSet, RangeForVisitsInsertionOrder) {
  NodeSet s;
  s.insert(7);
  s.insert(3);
  s.insert(11);
  std::vector<int> seen;
  for (int id : s) seen.push_back(id);
  EXPECT_EQ(seen, (std::vector<int>{7, 3, 11}));
}

TEST(NodeSet, ClearForgetsMembersButStaysUsable) {
  NodeSet s;
  s.insert(2);
  s.insert(200);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.contains(200));
  EXPECT_TRUE(s.insert(200));  // reinsertion after clear works
  EXPECT_EQ(s.items(), (std::vector<int>{200}));
}

TEST(NodeSet, DrainIntoMovesMembersAndEmptiesTheSet) {
  NodeSet s;
  s.insert(4);
  s.insert(9);
  s.insert(1);
  std::vector<int> out{99, 98};  // stale contents must be discarded
  s.drain_into(out);
  EXPECT_EQ(out, (std::vector<int>{4, 9, 1}));
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(4));
  // The drained set refills cleanly (the copyset round-trip).
  EXPECT_TRUE(s.insert(9));
  EXPECT_EQ(s.items(), (std::vector<int>{9}));
}

TEST(NodeSet, InterleavedChurnMatchesReferenceSemantics) {
  // Pseudo-random insert/clear churn cross-checked against the naive
  // vector-scan implementation the set replaced.
  NodeSet s;
  std::vector<int> ref;
  std::uint64_t x = 12345;
  auto rng = [&] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 5000; ++i) {
    const int id = static_cast<int>(rng() % 300);
    const bool known = std::find(ref.begin(), ref.end(), id) != ref.end();
    EXPECT_EQ(s.contains(id), known);
    EXPECT_EQ(s.insert(id), !known);
    if (!known) ref.push_back(id);
    if (i % 997 == 0) {
      EXPECT_EQ(s.items(), ref);
      s.clear();
      ref.clear();
    }
  }
  EXPECT_EQ(s.items(), ref);
}

}  // namespace
}  // namespace hyp
