#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hyp {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

Cli make_cli() {
  Cli cli("test program");
  cli.flag_int("nodes", 4, "node count")
      .flag_double("scale", 1.5, "scaling factor")
      .flag_bool("full", false, "paper-scale run")
      .flag_string("cluster", "myri200", "cluster preset");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  Cli cli = make_cli();
  Argv a({"prog"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.get_int("nodes"), 4);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 1.5);
  EXPECT_FALSE(cli.get_bool("full"));
  EXPECT_EQ(cli.get_string("cluster"), "myri200");
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli();
  Argv a({"prog", "--nodes=12", "--scale=0.25", "--cluster=sci450"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.get_int("nodes"), 12);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.25);
  EXPECT_EQ(cli.get_string("cluster"), "sci450");
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli = make_cli();
  Argv a({"prog", "--nodes", "8"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.get_int("nodes"), 8);
}

TEST(Cli, BoolForms) {
  {
    Cli cli = make_cli();
    Argv a({"prog", "--full"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_TRUE(cli.get_bool("full"));
  }
  {
    Cli cli = make_cli();
    Argv a({"prog", "--full=true", "--no-full"});
    ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
    EXPECT_FALSE(cli.get_bool("full"));
  }
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  Argv a({"prog", "--help"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(CliDeath, UnknownFlagExits) {
  Cli cli = make_cli();
  Argv a({"prog", "--bogus=1"});
  EXPECT_EXIT(cli.parse(a.argc(), a.argv()), testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliDeath, BadIntegerExits) {
  Cli cli = make_cli();
  Argv a({"prog", "--nodes=twelve"});
  EXPECT_EXIT(cli.parse(a.argc(), a.argv()), testing::ExitedWithCode(2), "bad integer");
}

TEST(CliDeath, MissingValueExits) {
  Cli cli = make_cli();
  Argv a({"prog", "--nodes"});
  EXPECT_EXIT(cli.parse(a.argc(), a.argv()), testing::ExitedWithCode(2), "needs a value");
}

}  // namespace
}  // namespace hyp
