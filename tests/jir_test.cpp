// JIR: assembler, verifier and interpreter over the cluster JVM.
#include <gtest/gtest.h>

#include "jir/assembler.hpp"
#include "jir/interp.hpp"

namespace hyp::jir {
namespace {

hyperion::VmConfig vm_config(dsm::ProtocolKind kind, int nodes) {
  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  return cfg;
}

// Assembles (must succeed), runs `main` on a fresh VM, returns the result.
std::int64_t run_program(const std::string& source, dsm::ProtocolKind kind, int nodes,
                         std::vector<std::int64_t> args = {}) {
  auto assembled = assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.error;
  hyperion::HyperionVM vm(vm_config(kind, nodes));
  std::int64_t result = 0;
  vm.run_main([&](hyperion::JavaEnv& main) {
    Interpreter interp(&assembled.program, &main);
    result = interp.run("main", std::move(args));
  });
  return result;
}

// --- assembler -------------------------------------------------------------

TEST(JirAssembler, MinimalProgram) {
  auto r = assemble("func main args=0 locals=0\n lconst 42\n ret\nend\n");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.program.functions.size(), 1u);
  EXPECT_EQ(r.program.functions[0].code.size(), 2u);
  EXPECT_EQ(r.program.functions[0].code[0].operand, 42);
}

TEST(JirAssembler, LabelsAndBranches) {
  auto r = assemble(R"(
func main args=0 locals=1
  lconst 3
  store 0
loop:
  load 0
  ifeq done
  load 0
  lconst 1
  lsub
  store 0
  goto loop
done:
  lconst 7
  ret
end
)");
  ASSERT_TRUE(r.ok()) << r.error;
}

TEST(JirAssembler, CommentsAndBlanksIgnored) {
  auto r = assemble("# header\nfunc main args=0 locals=0\n\n  lconst 1 # inline\n  ret\nend\n");
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(JirAssembler, ForwardFunctionReference) {
  auto r = assemble(R"(
func main args=0 locals=0
  lconst 20
  call double_it
  ret
end
func double_it args=1 locals=1
  load 0
  lconst 2
  lmul
  ret
end
)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.program.functions[0].code[1].operand, 1);  // resolved index
}

TEST(JirAssembler, Errors) {
  EXPECT_NE(assemble("lconst 1\n").error.find("outside func"), std::string::npos);
  EXPECT_NE(assemble("func main args=0 locals=0\n bogus\nend\n").error.find("unknown opcode"),
            std::string::npos);
  EXPECT_NE(assemble("func main args=0 locals=0\n goto nowhere\n ret\nend\n")
                .error.find("unknown label"),
            std::string::npos);
  EXPECT_NE(assemble("func main args=0 locals=0\n lconst 1\n ret\n").error.find("missing end"),
            std::string::npos);
  EXPECT_NE(assemble("func main args=0 locals=0\n call ghost\n ret\nend\n")
                .error.find("unknown function"),
            std::string::npos);
}

TEST(JirDisassembler, RoundTripsPrograms) {
  const std::string src = R"(
func main args=0 locals=2
  lconst 10
  store 0
loop:
  load 0
  ifeq done
  load 0
  lconst 1
  lsub
  store 0
  dconst 2.5
  pop
  goto loop
done:
  lconst 1
  call helper
  ret
end
func helper args=1 locals=1
  load 0
  ret
end
)";
  auto first = assemble(src);
  ASSERT_TRUE(first.ok()) << first.error;
  const std::string text = disassemble(first.program);
  auto second = assemble(text);
  ASSERT_TRUE(second.ok()) << second.error << "\n" << text;
  ASSERT_EQ(second.program.functions.size(), first.program.functions.size());
  for (std::size_t f = 0; f < first.program.functions.size(); ++f) {
    const auto& a = first.program.functions[f];
    const auto& b = second.program.functions[f];
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t i = 0; i < a.code.size(); ++i) {
      EXPECT_EQ(a.code[i].op, b.code[i].op) << "insn " << i;
      EXPECT_EQ(a.code[i].operand, b.code[i].operand) << "insn " << i;
    }
  }
}

// --- verifier ---------------------------------------------------------------

TEST(JirVerifier, CatchesStackUnderflow) {
  auto r = assemble("func main args=0 locals=0\n ladd\n ret\nend\n");
  EXPECT_NE(r.error.find("underflow"), std::string::npos);
}

TEST(JirVerifier, CatchesFallOffEnd) {
  auto r = assemble("func main args=0 locals=0\n lconst 1\nend\n");
  EXPECT_NE(r.error.find("falls off"), std::string::npos);
}

TEST(JirVerifier, CatchesInconsistentDepths) {
  // One path pushes before the join point, the other does not.
  auto r = assemble(R"(
func main args=1 locals=1
  load 0
  ifeq push_one
  goto join
push_one:
  lconst 5
join:
  lconst 0
  ret
end
)");
  EXPECT_NE(r.error.find("inconsistent stack depth"), std::string::npos);
}

TEST(JirVerifier, CatchesBadLocalIndex) {
  auto r = assemble("func main args=0 locals=1\n load 3\n ret\nend\n");
  EXPECT_NE(r.error.find("local index"), std::string::npos);
}

// --- interpreter ------------------------------------------------------------

class JirInterpTest : public ::testing::TestWithParam<dsm::ProtocolKind> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, JirInterpTest,
                         ::testing::Values(dsm::ProtocolKind::kJavaIc,
                                           dsm::ProtocolKind::kJavaPf),
                         [](const auto& info) { return dsm::protocol_name(info.param); });

TEST_P(JirInterpTest, ArithmeticAndControlFlow) {
  // 10! via a loop.
  const std::string src = R"(
func main args=0 locals=2
  lconst 1
  store 0      # acc
  lconst 10
  store 1      # i
loop:
  load 1
  ifeq done
  load 0
  load 1
  lmul
  store 0
  load 1
  lconst 1
  lsub
  store 1
  goto loop
done:
  load 0
  ret
end
)";
  EXPECT_EQ(run_program(src, GetParam(), 2), 3628800);
}

TEST_P(JirInterpTest, DoubleArithmetic) {
  const std::string src = R"(
func main args=0 locals=0
  dconst 1.5
  dconst 2.5
  dadd
  dconst 4.0
  dmul
  d2l
  ret
end
)";
  EXPECT_EQ(run_program(src, GetParam(), 1), 16);
}

TEST_P(JirInterpTest, CallsAndRecursion) {
  const std::string src = R"(
func main args=0 locals=0
  lconst 12
  call fib
  ret
end
func fib args=1 locals=1
  load 0
  lconst 2
  lcmp
  ifge recurse
  load 0
  ret
recurse:
  load 0
  lconst 1
  lsub
  call fib
  load 0
  lconst 2
  lsub
  call fib
  ladd
  ret
end
)";
  EXPECT_EQ(run_program(src, GetParam(), 2), 144);
}

TEST_P(JirInterpTest, SharedArraysAcrossTheDsm) {
  const std::string src = R"(
func main args=0 locals=2
  lconst 100
  newarray_l
  store 0
  lconst 0
  store 1
fill:
  load 1
  lconst 100
  lcmp
  ifge sum
  load 0
  load 1
  load 1
  load 1
  lmul
  astore_l
  load 1
  lconst 1
  ladd
  store 1
  goto fill
sum:
  load 0
  lconst 99
  aload_l
  load 0
  arraylen
  ladd
  ret
end
)";
  EXPECT_EQ(run_program(src, GetParam(), 2), 99 * 99 + 100);
}

TEST_P(JirInterpTest, MonitorSynchronizedThreads) {
  // 4 interpreted threads each add 1..50 into cell[0] under the array's
  // monitor; main joins and returns the total.
  const std::string src = R"(
func main args=0 locals=1
  lconst 1
  newarray_l
  store 0
  load 0
  spawn worker
  load 0
  spawn worker
  load 0
  spawn worker
  load 0
  spawn worker
  joinall
  load 0
  lconst 0
  aload_l
  ret
end
func worker args=1 locals=2
  lconst 50
  store 1
loop:
  load 1
  ifeq done
  load 0
  monitorenter
  load 0
  lconst 0
  load 0
  lconst 0
  aload_l
  load 1
  ladd
  astore_l
  load 0
  monitorexit
  load 1
  lconst 1
  lsub
  store 1
  goto loop
done:
  retvoid
end
)";
  const std::int64_t per_thread = 50 * 51 / 2;
  EXPECT_EQ(run_program(src, GetParam(), 4), 4 * per_thread);
}

TEST_P(JirInterpTest, InterpretedRiemannPi) {
  // The paper's Pi program, as bytecode, on the cluster JVM.
  const std::string src = R"(
func main args=1 locals=4
  dconst 0.0
  store 1          # sum
  lconst 0
  store 2          # i
loop:
  load 2
  load 0
  lcmp
  ifge done
  load 2
  l2d
  dconst 0.5
  dadd
  load 0
  l2d
  ddiv
  store 3          # x
  dconst 4.0
  dconst 1.0
  load 3
  load 3
  dmul
  dadd
  ddiv
  load 1
  dadd
  store 1
  load 2
  lconst 1
  ladd
  store 2
  goto loop
done:
  load 1
  load 0
  l2d
  ddiv
  d2l             # floor(pi) == 3
  ret
end
)";
  EXPECT_EQ(run_program(src, GetParam(), 1, {20000}), 3);
}

TEST(JirInterp, InterpretedCodePaysProtocolCosts) {
  // Interpreted array sweeps must show the same protocol signature as
  // compiled code: checks under java_ic, none under java_pf.
  const std::string src = R"(
func main args=0 locals=1
  lconst 64
  newarray_l
  store 0
  load 0
  lconst 5
  lconst 7
  astore_l
  load 0
  lconst 5
  aload_l
  ret
end
)";
  auto assembled = assemble(src);
  ASSERT_TRUE(assembled.ok()) << assembled.error;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    hyperion::HyperionVM vm(vm_config(kind, 2));
    vm.run_main([&](hyperion::JavaEnv& main) {
      Interpreter interp(&assembled.program, &main);
      EXPECT_EQ(interp.run("main"), 7);
    });
    if (kind == dsm::ProtocolKind::kJavaIc) {
      EXPECT_GT(vm.stats().get(Counter::kInlineChecks), 0u);
    } else {
      EXPECT_EQ(vm.stats().get(Counter::kInlineChecks), 0u);
    }
  }
}

TEST(JirInterpDeath, ArrayIndexOutOfBoundsAborts) {
  // Java semantics: runtime bounds check on every array access (the
  // verifier cannot prove indices).
  const std::string src = R"(
func main args=0 locals=1
  lconst 4
  newarray_l
  store 0
  load 0
  lconst 9
  aload_l
  ret
end
)";
  auto assembled = assemble(src);
  ASSERT_TRUE(assembled.ok());
  hyperion::HyperionVM vm(vm_config(dsm::ProtocolKind::kJavaPf, 1));
  EXPECT_DEATH(vm.run_main([&](hyperion::JavaEnv& main) {
                 Interpreter interp(&assembled.program, &main);
                 interp.run("main");
               }),
               "out of bounds");
}

TEST(JirInterpDeath, NegativeIndexAborts) {
  const std::string src = R"(
func main args=0 locals=1
  lconst 4
  newarray_l
  store 0
  load 0
  lconst -1
  lconst 5
  astore_l
  lconst 0
  ret
end
)";
  auto assembled = assemble(src);
  ASSERT_TRUE(assembled.ok());
  hyperion::HyperionVM vm(vm_config(dsm::ProtocolKind::kJavaIc, 1));
  EXPECT_DEATH(vm.run_main([&](hyperion::JavaEnv& main) {
                 Interpreter interp(&assembled.program, &main);
                 interp.run("main");
               }),
               "out of bounds");
}

TEST(JirInterpDeath, DivisionByZeroAborts) {
  const std::string src =
      "func main args=0 locals=0\n lconst 1\n lconst 0\n ldiv\n ret\nend\n";
  auto assembled = assemble(src);
  ASSERT_TRUE(assembled.ok());
  hyperion::HyperionVM vm(vm_config(dsm::ProtocolKind::kJavaPf, 1));
  EXPECT_DEATH(vm.run_main([&](hyperion::JavaEnv& main) {
                 Interpreter interp(&assembled.program, &main);
                 interp.run("main");
               }),
               "division by zero");
}

TEST(JirInterpDeath, WrongArgumentCountAborts) {
  auto assembled = assemble("func main args=2 locals=2\n lconst 0\n ret\nend\n");
  ASSERT_TRUE(assembled.ok());
  hyperion::HyperionVM vm(vm_config(dsm::ProtocolKind::kJavaPf, 1));
  EXPECT_DEATH(vm.run_main([&](hyperion::JavaEnv& main) {
                 Interpreter interp(&assembled.program, &main);
                 interp.run("main", {1});
               }),
               "argument count");
}

}  // namespace
}  // namespace hyp::jir
