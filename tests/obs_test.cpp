// Tests of the observability layer (src/obs): Perfetto export (pinned to a
// byte-identical golden), log2 histogram bucket edges, page-heat top-N
// ordering, phase accounting, metrics JSON, trace drop accounting — and the
// no-perturbation contract: attaching every observer must not move virtual
// time by a single picosecond.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/jacobi.hpp"
#include "cluster/trace.hpp"
#include "common/histogram.hpp"
#include "obs/heat.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/phase.hpp"

namespace hyp::obs {
namespace {

#ifndef HYP_PERFETTO_GOLDEN_FILE
#error "HYP_PERFETTO_GOLDEN_FILE must point at the recorded golden"
#endif

// ---- histogram bucket edges -------------------------------------------------

TEST(Log2HistogramEdges, ZeroOneAndMaxLandInTheRightBuckets) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(~std::uint64_t{0}), 64);
  EXPECT_EQ(Log2Histogram::bucket_of(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Log2Histogram::bucket_of((std::uint64_t{1} << 63) - 1), 63);

  Log2Histogram h;
  h.record(0);
  h.record(1);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(64), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST(Log2HistogramEdges, BucketBoundsAreInclusivePowerOfTwoRanges) {
  // Bucket 0 = {0}, bucket k (0 < k < 64) = [2^(k-1), 2^k - 1], bucket 64
  // saturates to [2^63, UINT64_MAX] — both bounds inclusive, so every
  // bucket's bounds are representable and the top bucket really contains
  // record(UINT64_MAX) (the old exclusive contract claimed it did not).
  EXPECT_EQ(Log2Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_lower(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_lower(10), 512u);
  EXPECT_EQ(Log2Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(Log2Histogram::bucket_lower(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Log2Histogram::bucket_upper(64), ~std::uint64_t{0});
  // Every representable value falls inside its own bucket's bounds — now
  // with no bucket-64 carve-out: the inclusive top bound holds everywhere.
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
                          std::uint64_t{4096}, ~std::uint64_t{0} - 1, ~std::uint64_t{0}}) {
    const int b = Log2Histogram::bucket_of(v);
    EXPECT_GE(v, Log2Histogram::bucket_lower(b)) << v;
    EXPECT_LE(v, Log2Histogram::bucket_upper(b)) << v;
  }
}

TEST(Log2HistogramEdges, ExactBoundaryValuesLandInsideTheirLabeledBucket) {
  // The satellite's pinned boundary set: 0, 1, 2^k-1, 2^k, UINT64_MAX. Each
  // recorded value's bucket must be labeled with bounds that contain it.
  auto contained = [](std::uint64_t v) {
    Log2Histogram h;
    h.record(v);
    const int b = Log2Histogram::bucket_of(v);
    EXPECT_EQ(h.bucket(b), 1u) << v;
    EXPECT_GE(v, Log2Histogram::bucket_lower(b)) << v;
    EXPECT_LE(v, Log2Histogram::bucket_upper(b)) << v;
  };
  contained(0);
  contained(1);
  for (int k : {1, 2, 10, 31, 32, 63}) {
    contained((std::uint64_t{1} << k) - 1);
    contained(std::uint64_t{1} << k);
  }
  contained(~std::uint64_t{0});
  // Adjacent buckets never overlap and leave no gap: upper(k) + 1 == lower(k+1).
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(Log2Histogram::bucket_upper(k) + 1, Log2Histogram::bucket_lower(k + 1)) << k;
  }
}

TEST(Log2HistogramEdges, MergeAggregatesBucketwise) {
  Log2Histogram a, b;
  a.record(1);
  a.record(100);
  b.record(0);
  b.record(1 << 20);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), std::uint64_t{1} << 20);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(1), 1u);
  EXPECT_EQ(a.bucket(21), 1u);
}

// ---- page heat --------------------------------------------------------------

TEST(PageHeat, TopNOrdersByCoherenceEventsThenBytesThenPage) {
  PageHeatTable heat;
  heat.init(16, 4096);
  // page 3: 5 coherence events; page 7: 5 events but more update bytes;
  // page 1: 2 events; page 9: zero events (must be excluded).
  for (int i = 0; i < 5; ++i) heat.record_fetch(3);
  for (int i = 0; i < 3; ++i) heat.record_fetch(7);
  for (int i = 0; i < 2; ++i) heat.record_fault(7);
  heat.record_update(7, 4096);
  heat.record_fetch(1);
  heat.record_fault(1);

  const auto top = heat.top(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].page, 7u);  // tie on events (5) broken by update_bytes
  EXPECT_EQ(top[1].page, 3u);
  EXPECT_EQ(top[2].page, 1u);
  EXPECT_EQ(top[0].fetches, 3u);
  EXPECT_EQ(top[0].faults, 2u);
  EXPECT_EQ(top[0].update_bytes, 4096u);

  // n smaller than the hot set truncates, hottest kept.
  const auto top1 = heat.top(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].page, 7u);
}

TEST(PageHeat, EqualHeatBreaksTiesByPageAscending) {
  PageHeatTable heat;
  heat.init(8, 4096);
  heat.record_fetch(5);
  heat.record_fetch(2);
  heat.record_fetch(6);
  const auto top = heat.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].page, 2u);
  EXPECT_EQ(top[1].page, 5u);
  EXPECT_EQ(top[2].page, 6u);
}

TEST(PageHeat, OutOfRangePagesAreIgnoredNotFatal) {
  PageHeatTable heat;
  heat.init(4, 4096);
  heat.record_fetch(1000);
  heat.record_fault(1000);
  heat.record_update(1000, 8);
  EXPECT_TRUE(heat.top(4).empty());
}

// Regression: the per-page getters used to index unchecked — a page id from a
// stale report (or one recorded before a region re-init shrank the table)
// read past the arrays. They now mirror the record_* guards and read as 0.
TEST(PageHeat, OutOfRangeGettersReadZero) {
  PageHeatTable heat;
  heat.init(4, 4096);
  heat.record_fetch(2);
  heat.record_fault(2);
  heat.record_update(2, 64);
  EXPECT_EQ(heat.fetches(1000), 0u);
  EXPECT_EQ(heat.faults(1000), 0u);
  EXPECT_EQ(heat.update_bytes(1000), 0u);
  EXPECT_EQ(heat.fetches(2), 1u);

  heat.init(2, 4096);  // re-init shrinks: page 2 is now out of range
  EXPECT_EQ(heat.fetches(2), 0u);
  EXPECT_EQ(heat.faults(2), 0u);
  EXPECT_EQ(heat.update_bytes(2), 0u);
}

// ---- windowed heat (the hybrid protocol's decision signal) ------------------

TEST(WindowedHeat, FoldDecaysByHalfPerElapsedEpoch) {
  WindowedHeat w;
  w.init(8);
  w.raw_accesses()[3] = 16;
  w.note_miss(3, 10);  // folds raw into the window, then counts the miss
  EXPECT_EQ(w.accesses(3), 16u);
  EXPECT_EQ(w.misses(3), 1u);

  // Two epochs later: both window counters halve twice before accumulating.
  w.raw_accesses()[3] = 4;
  w.note_miss(3, 12);
  EXPECT_EQ(w.accesses(3), 16u / 4 + 4u);
  EXPECT_EQ(w.misses(3), 1u);  // 1 >> 2 == 0, then the new miss

  // Same epoch: no decay, raw still folds in.
  w.raw_accesses()[3] = 1;
  w.fold(3, 12);
  EXPECT_EQ(w.accesses(3), 9u);
}

TEST(WindowedHeat, HugeEpochGapsClampAndOutOfRangeIsIgnored) {
  WindowedHeat w;
  w.init(2);
  w.raw_accesses()[0] = 1;
  w.note_miss(0, 1);
  w.note_miss(0, 500);  // gap >> 63 epochs: shift clamps, window zeroes
  EXPECT_EQ(w.accesses(0), 0u);
  EXPECT_EQ(w.misses(0), 1u);

  w.fold(1000, 5);      // out of range: no write, no crash
  w.note_miss(1000, 5);
  EXPECT_EQ(w.accesses(1000), 0u);
  EXPECT_EQ(w.misses(1000), 0u);
}

// ---- phase accounting -------------------------------------------------------

TEST(PhaseAccountingTest, PerNodeAndTotalsAccumulate) {
  PhaseAccounting acct;
  acct.init(2);
  acct.add(0, Phase::kCompute, 100);
  acct.add(0, Phase::kCompute, 50);
  acct.add(1, Phase::kBlockedFetch, 7);
  acct.add(1, Phase::kBarrier, 3);
  EXPECT_EQ(acct.get(0, Phase::kCompute), 150u);
  EXPECT_EQ(acct.get(1, Phase::kCompute), 0u);
  EXPECT_EQ(acct.get(1, Phase::kBlockedFetch), 7u);
  EXPECT_EQ(acct.total(Phase::kCompute), 150u);
  EXPECT_EQ(acct.total(Phase::kBarrier), 3u);
  acct.init(2);  // re-init resets
  EXPECT_EQ(acct.total(Phase::kCompute), 0u);
}

// ---- trace drop accounting --------------------------------------------------

TEST(TraceDrops, PerKindDropCountsKeepObservedTotalsHonest) {
  cluster::TraceLog log(/*capacity=*/2);
  log.record(1, 0, cluster::TraceKind::kPageFetch, 1, 0);
  log.record(2, 0, cluster::TraceKind::kPageFault, 2, 0);
  log.record(3, 0, cluster::TraceKind::kPageFault, 3, 0);  // dropped
  log.record(4, 0, cluster::TraceKind::kUpdateSent, 1, 64);  // dropped
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.dropped(cluster::TraceKind::kPageFault), 1u);
  EXPECT_EQ(log.dropped(cluster::TraceKind::kUpdateSent), 1u);
  EXPECT_EQ(log.dropped(cluster::TraceKind::kPageFetch), 0u);
  // count() = retained + dropped, so a saturated trace doesn't skew totals.
  EXPECT_EQ(log.count(cluster::TraceKind::kPageFault), 2u);
  EXPECT_EQ(log.recorded(cluster::TraceKind::kPageFault), 1u);
  log.clear();
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.dropped(cluster::TraceKind::kPageFault), 0u);
}

// ---- the observed run used by the export tests ------------------------------

struct ObservedRun {
  cluster::TraceLog trace{1 << 16};
  PageHeatTable heat;
  PhaseAccounting phases;
  apps::RunResult result;
};

// Tiny 2-node java_pf Jacobi with every observer attached — the workload
// behind the Perfetto golden. Deterministic, so the export is byte-stable.
ObservedRun observed_jacobi() {
  ObservedRun run;
  auto cfg = apps::make_config("myri200", dsm::ProtocolKind::kJavaPf, 2,
                               std::size_t{16} << 20);
  cfg.trace = &run.trace;
  cfg.heat = &run.heat;
  cfg.phases = &run.phases;
  apps::JacobiParams p;
  p.n = 8;
  p.steps = 2;
  run.result = apps::jacobi_parallel(cfg, p);
  return run;
}

TEST(PerfettoExport, GoldenByteIdentical) {
  ObservedRun run = observed_jacobi();
  ASSERT_EQ(run.trace.dropped(), 0u);
  std::ostringstream os;
  write_perfetto_trace(os, run.trace);
  const std::string actual = os.str();

  // Structural invariants first (meaningful failure messages even when the
  // golden is being re-recorded).
  EXPECT_NE(actual.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(actual.find("\"page_fault\""), std::string::npos);
  EXPECT_NE(actual.find("\"update_sent\""), std::string::npos);
  EXPECT_NE(actual.find("\"page_fetch\""), std::string::npos);      // derived slice
  EXPECT_NE(actual.find("\"monitor_acquire\""), std::string::npos);  // derived slice
  EXPECT_NE(actual.find("\"trace_dropped\""), std::string::npos);

  if (std::getenv("HYP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(HYP_PERFETTO_GOLDEN_FILE, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << HYP_PERFETTO_GOLDEN_FILE;
    out << actual;
    GTEST_SKIP() << "golden re-recorded at " << HYP_PERFETTO_GOLDEN_FILE;
  }

  std::ifstream in(HYP_PERFETTO_GOLDEN_FILE, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden; record with HYP_UPDATE_GOLDENS=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(actual, want.str())
      << "Perfetto serialization drifted from tests/goldens/perfetto_golden.json";
}

TEST(PerfettoExport, InstantsOnlyWhenSlicesDisabled) {
  ObservedRun run = observed_jacobi();
  std::ostringstream os;
  PerfettoOptions opts;
  opts.derive_slices = false;
  write_perfetto_trace(os, run.trace, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"page_fault\""), std::string::npos);
  EXPECT_EQ(out.find("\"ph\":\"X\""), std::string::npos);
}

TEST(MetricsJson, CarriesCountersHistogramsHeatPhasesAndDrops) {
  ObservedRun run = observed_jacobi();
  MetricsPoint mp;
  mp.cluster = "myri200";
  mp.protocol = "java_pf";
  mp.nodes = 2;
  mp.label = "jacobi tiny";
  mp.elapsed = run.result.elapsed;
  mp.value = run.result.value;
  mp.has_value = true;
  mp.stats = run.result.stats;
  fill_heat(mp, run.heat, 4);
  fill_phases(mp, run.phases);
  mp.has_trace = true;
  mp.trace_events = run.trace.events().size();
  mp.trace_dropped = run.trace.dropped();

  std::ostringstream os;
  write_metrics_json(os, "obs_test", {mp});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\":\"hyp-metrics-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"protocol\":\"java_pf\""), std::string::npos);
  EXPECT_NE(out.find("\"page_fetch_latency_ps\""), std::string::npos);
  EXPECT_NE(out.find("\"monitor_acquire_wait_ps\""), std::string::npos);
  EXPECT_NE(out.find("\"page_heat\""), std::string::npos);
  EXPECT_NE(out.find("\"phases_ps\""), std::string::npos);
  EXPECT_NE(out.find("\"trace\":{\"events\":"), std::string::npos);
  EXPECT_NE(out.find("\"dropped\":0"), std::string::npos);
}

// ---- the no-perturbation contract -------------------------------------------

TEST(NoPerturbation, AttachingEveryObserverDoesNotShiftVirtualTime) {
  // Bare run: no observers.
  auto cfg_bare = apps::make_config("myri200", dsm::ProtocolKind::kJavaPf, 2,
                                    std::size_t{16} << 20);
  apps::JacobiParams p;
  p.n = 8;
  p.steps = 2;
  const auto bare = apps::jacobi_parallel(cfg_bare, p);

  // Fully observed run of the identical workload.
  ObservedRun run = observed_jacobi();

  EXPECT_EQ(run.result.elapsed, bare.elapsed)
      << "trace/heat/phase attachment shifted virtual time";
  EXPECT_EQ(run.result.value, bare.value);
  EXPECT_EQ(run.result.events_processed, bare.events_processed);
  EXPECT_EQ(run.result.context_switches, bare.context_switches);
  EXPECT_EQ(run.result.stats.nonzero(), bare.stats.nonzero());

  // The observers actually saw the run (this is not a vacuous pass).
  EXPECT_FALSE(run.trace.events().empty());
  EXPECT_GT(run.trace.count(cluster::TraceKind::kPageFault), 0u);
  EXPECT_FALSE(run.heat.top(1).empty());
  EXPECT_GT(run.phases.total(Phase::kCompute), 0u);
  // Histograms recorded alongside the counters, equal by construction.
  EXPECT_GT(run.result.stats.hist(Hist::kPageFetchLatency).count(), 0u);
}

TEST(NoPerturbation, JavaIcObservedRunAlsoUnshifted) {
  auto bare_cfg = apps::make_config("myri200", dsm::ProtocolKind::kJavaIc, 2,
                                    std::size_t{16} << 20);
  apps::JacobiParams p;
  p.n = 8;
  p.steps = 2;
  const auto bare = apps::jacobi_parallel(bare_cfg, p);

  cluster::TraceLog trace(1 << 16);
  PageHeatTable heat;
  PhaseAccounting phases;
  auto cfg = apps::make_config("myri200", dsm::ProtocolKind::kJavaIc, 2,
                               std::size_t{16} << 20);
  cfg.trace = &trace;
  cfg.heat = &heat;
  cfg.phases = &phases;
  const auto observed = apps::jacobi_parallel(cfg, p);

  EXPECT_EQ(observed.elapsed, bare.elapsed);
  EXPECT_EQ(observed.stats.nonzero(), bare.stats.nonzero());
  // java_ic: no faults, but update traffic lands in the heat table.
  EXPECT_EQ(trace.count(cluster::TraceKind::kPageFault), 0u);
  EXPECT_FALSE(heat.top(1).empty());
}

}  // namespace
}  // namespace hyp::obs
