// Tests of the protocol event-trace subsystem.
#include "cluster/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hyperion/vm.hpp"

namespace hyp::cluster {
namespace {

TEST(TraceLog, RecordsAndCounts) {
  TraceLog log;
  log.record(kMicrosecond, 0, TraceKind::kPageFetch, 7, 1);
  log.record(2 * kMicrosecond, 1, TraceKind::kPageFault, 7, 0);
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.count(TraceKind::kPageFetch), 1u);
  EXPECT_EQ(log.count(TraceKind::kPageFault), 1u);
  EXPECT_EQ(log.count(TraceKind::kInvalidate), 0u);
}

TEST(TraceLog, CapacityStopsRecordingAndCountsDrops) {
  TraceLog log(3);
  for (int i = 0; i < 10; ++i) log.record(0, 0, TraceKind::kInvalidate, i, 0);
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.dropped(), 7u);
  EXPECT_EQ(log.events()[0].a, 0);  // earliest events are kept
}

TEST(TraceLog, TextDumpIsReadable) {
  TraceLog log;
  log.record(1500 * kNanosecond, 2, TraceKind::kMonitorEnter, 4096, 3);
  std::ostringstream oss;
  log.write_text(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("monitor_enter"), std::string::npos);
  EXPECT_NE(out.find("n2"), std::string::npos);
  EXPECT_NE(out.find("1.500 us"), std::string::npos);
}

TEST(TraceLog, ClearResets) {
  TraceLog log(2);
  log.record(0, 0, TraceKind::kPageFetch, 0, 0);
  log.record(0, 0, TraceKind::kPageFetch, 0, 0);
  log.record(0, 0, TraceKind::kPageFetch, 0, 0);  // dropped
  log.clear();
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceIntegration, VmRunEmitsProtocolEvents) {
  hyperion::VmConfig cfg;
  cfg.nodes = 2;
  cfg.protocol = dsm::ProtocolKind::kJavaPf;
  cfg.region_bytes = std::size_t{16} << 20;
  hyperion::HyperionVM vm(cfg);
  TraceLog trace;
  vm.cluster().set_trace(&trace);

  vm.run_main([&](hyperion::JavaEnv& main) {
    hyperion::Mem<dsm::PfPolicy> mem(main.ctx());
    auto cell = main.new_cell<std::int64_t>(0);
    auto t = main.start_thread("worker", [cell](hyperion::JavaEnv& env) {
      hyperion::Mem<dsm::PfPolicy> m(env.ctx());
      env.migrate_to(1);  // make the cell remote: accesses must fault
      env.synchronized(cell.addr, [&] { m.put(cell, m.get(cell) + 1); });
    });
    main.join(t);
  });

  EXPECT_GE(trace.count(TraceKind::kThreadStart), 1u);
  EXPECT_GE(trace.count(TraceKind::kMonitorEnter), 1u);
  EXPECT_GE(trace.count(TraceKind::kMonitorExit), 1u);
  EXPECT_GE(trace.count(TraceKind::kPageFault), 1u);   // remote cell access
  EXPECT_GE(trace.count(TraceKind::kPageFetch), 1u);
  EXPECT_GE(trace.count(TraceKind::kThreadMigrate), 1u);

  // Timestamps are monotone (events are recorded in simulation order).
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].at, trace.events()[i].at);
  }
}

TEST(TraceIntegration, TracesAreDeterministic) {
  auto run_once = [] {
    hyperion::VmConfig cfg;
    cfg.nodes = 3;
    cfg.protocol = dsm::ProtocolKind::kJavaIc;
    cfg.region_bytes = std::size_t{16} << 20;
    hyperion::HyperionVM vm(cfg);
    TraceLog trace;
    vm.cluster().set_trace(&trace);
    vm.run_main([&](hyperion::JavaEnv& main) {
      hyperion::Mem<dsm::IcPolicy> mem(main.ctx());
      auto cell = main.new_cell<std::int64_t>(0);
      std::vector<hyperion::JThread> ts;
      for (int w = 0; w < 3; ++w) {
        ts.push_back(main.start_thread("w" + std::to_string(w), [cell](hyperion::JavaEnv& env) {
          hyperion::Mem<dsm::IcPolicy> m(env.ctx());
          for (int i = 0; i < 5; ++i) {
            env.synchronized(cell.addr, [&] { m.put(cell, m.get(cell) + 1); });
          }
        }));
      }
      for (auto& t : ts) main.join(t);
    });
    std::ostringstream oss;
    trace.write_text(oss);
    return oss.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TraceIntegration, NoTraceAttachedIsSilent) {
  hyperion::VmConfig cfg;
  cfg.nodes = 2;
  cfg.protocol = dsm::ProtocolKind::kJavaPf;
  cfg.region_bytes = std::size_t{16} << 20;
  hyperion::HyperionVM vm(cfg);
  // Simply must not crash with the default nullptr trace.
  vm.run_main([&](hyperion::JavaEnv& main) {
    auto cell = main.new_cell<std::int64_t>(0);
    main.synchronized(cell.addr, [] {});
  });
  SUCCEED();
}

}  // namespace
}  // namespace hyp::cluster
