#include "hyperion/monitor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::hyperion {
namespace {

VmConfig test_config(dsm::ProtocolKind kind, int nodes) {
  VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  return cfg;
}

class MonitorProtocolTest : public ::testing::TestWithParam<dsm::ProtocolKind> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, MonitorProtocolTest,
                         ::testing::Values(dsm::ProtocolKind::kJavaIc,
                                           dsm::ProtocolKind::kJavaPf),
                         [](const auto& info) { return dsm::protocol_name(info.param); });

template <typename Policy>
void counter_increments(HyperionVM& vm, int threads, int reps, std::int64_t* out) {
  vm.run_main([&](JavaEnv& main) {
    auto counter = main.new_cell<std::int64_t>(0);
    std::vector<JThread> workers;
    for (int w = 0; w < threads; ++w) {
      workers.push_back(main.start_thread("w" + std::to_string(w), [=](JavaEnv& env) {
        Mem<Policy> mem(env.ctx());
        for (int i = 0; i < reps; ++i) {
          env.synchronized(counter.addr, [&] { mem.put(counter, mem.get(counter) + 1); });
        }
      }));
    }
    for (auto& w : workers) main.join(w);
    Mem<Policy> mem(main.ctx());
    *out = mem.get(counter);
  });
}

TEST_P(MonitorProtocolTest, SynchronizedCounterIsExact) {
  // The classic lost-update test: 8 threads on 4 nodes, 25 increments each,
  // under the counter object's monitor. Any consistency bug loses updates.
  HyperionVM vm(test_config(GetParam(), 4));
  std::int64_t result = -1;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    counter_increments<P>(vm, 8, 25, &result);
  });
  EXPECT_EQ(result, 8 * 25);
  EXPECT_GE(vm.stats().get(Counter::kMonitorEnters), 200u);
  EXPECT_EQ(vm.stats().get(Counter::kMonitorEnters), vm.stats().get(Counter::kMonitorExits));
}

TEST_P(MonitorProtocolTest, SingleNodeCounterIsExact) {
  // All contenders local to the monitor's home: exercises the local fast
  // path of the manager.
  HyperionVM vm(test_config(GetParam(), 1));
  std::int64_t result = -1;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    counter_increments<P>(vm, 4, 25, &result);
  });
  EXPECT_EQ(result, 4 * 25);
  // One node: no network traffic at all.
  EXPECT_EQ(vm.stats().get(Counter::kMessages), 0u);
}

TEST_P(MonitorProtocolTest, ReentrantEnterIsAllowed) {
  HyperionVM vm(test_config(GetParam(), 2));
  bool inner_ran = false;
  vm.run_main([&](JavaEnv& main) {
    auto cell = main.new_cell<std::int32_t>(0);
    main.monitor_enter(cell.addr);
    main.monitor_enter(cell.addr);  // reentrant
    inner_ran = true;
    main.monitor_exit(cell.addr);
    main.monitor_exit(cell.addr);
  });
  EXPECT_TRUE(inner_ran);
}

TEST_P(MonitorProtocolTest, WaitNotifyHandoff) {
  // Producer/consumer across nodes through a monitor-guarded mailbox.
  HyperionVM vm(test_config(GetParam(), 2));
  std::int64_t got = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto full = main.new_cell<std::int32_t>(0);
      auto value = main.new_cell<std::int64_t>(0);
      auto consumer = main.start_thread("consumer", [=, &got](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        env.monitor_enter(full.addr);
        while (mem.get(full) == 0) env.wait(full.addr);
        got = mem.get(value);
        env.monitor_exit(full.addr);
      });
      auto producer = main.start_thread("producer", [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        env.monitor_enter(full.addr);
        mem.put(value, std::int64_t{4242});
        mem.put(full, std::int32_t{1});
        env.notify(full.addr);
        env.monitor_exit(full.addr);
      });
      main.join(consumer);
      main.join(producer);
    });
  });
  EXPECT_EQ(got, 4242);
}

TEST_P(MonitorProtocolTest, NotifyAllWakesEveryWaiter) {
  HyperionVM vm(test_config(GetParam(), 4));
  int woke = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto flag = main.new_cell<std::int32_t>(0);
      std::vector<JThread> waiters;
      for (int i = 0; i < 6; ++i) {
        waiters.push_back(main.start_thread("waiter" + std::to_string(i),
                                            [=, &woke](JavaEnv& env) {
                                              Mem<P> mem(env.ctx());
                                              env.monitor_enter(flag.addr);
                                              while (mem.get(flag) == 0) env.wait(flag.addr);
                                              ++woke;
                                              env.monitor_exit(flag.addr);
                                            }));
      }
      auto waker = main.start_thread("waker", [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        env.monitor_enter(flag.addr);
        mem.put(flag, std::int32_t{1});
        env.notify_all(flag.addr);
        env.monitor_exit(flag.addr);
      });
      for (auto& w : waiters) main.join(w);
      main.join(waker);
    });
  });
  EXPECT_EQ(woke, 6);
}

TEST_P(MonitorProtocolTest, IndependentMonitorsDoNotInterfere) {
  HyperionVM vm(test_config(GetParam(), 2));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto a = main.new_cell<std::int64_t>(0);
      auto b = main.new_cell<std::int64_t>(0);
      auto t1 = main.start_thread("t1", [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        for (int i = 0; i < 10; ++i) {
          env.synchronized(a.addr, [&] { mem.put(a, mem.get(a) + 1); });
        }
      });
      auto t2 = main.start_thread("t2", [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        for (int i = 0; i < 10; ++i) {
          env.synchronized(b.addr, [&] { mem.put(b, mem.get(b) + 1); });
        }
      });
      main.join(t1);
      main.join(t2);
      Mem<P> mem(main.ctx());
      EXPECT_EQ(mem.get(a), 10);
      EXPECT_EQ(mem.get(b), 10);
    });
  });
}

TEST(MonitorDeath, ExitWithoutEnterAborts) {
  HyperionVM vm(test_config(dsm::ProtocolKind::kJavaPf, 1));
  EXPECT_DEATH(vm.run_main([](JavaEnv& main) {
                 auto cell = main.new_cell<std::int32_t>(0);
                 main.monitor_exit(cell.addr);
               }),
               "does not own");
}

TEST(MonitorDeath, WaitWithoutHoldingAborts) {
  HyperionVM vm(test_config(dsm::ProtocolKind::kJavaPf, 1));
  EXPECT_DEATH(vm.run_main([](JavaEnv& main) {
                 auto cell = main.new_cell<std::int32_t>(0);
                 main.wait(cell.addr);
               }),
               "without owning");
}

TEST(MonitorDeath, NotifyWithoutHoldingAborts) {
  HyperionVM vm(test_config(dsm::ProtocolKind::kJavaPf, 1));
  EXPECT_DEATH(vm.run_main([](JavaEnv& main) {
                 auto cell = main.new_cell<std::int32_t>(0);
                 main.notify(cell.addr);
               }),
               "without owning");
}

}  // namespace
}  // namespace hyp::hyperion
