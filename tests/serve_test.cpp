// Serving subsystem tests (docs/SERVING.md): the deterministic workload
// generator, the store harness against its serial reference, the measurement
// window, and the serve determinism golden — which pins a fault-free, a
// mid-run-crash and a partition cell under both protocols to recorded bits
// (byte-identical same-seed contract, including latency quantiles).
//
// Re-recording (only after an intentional semantic change — say why in the
// commit message):
//   HYP_UPDATE_GOLDENS=1 ./serve_tests
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/params.hpp"
#include "serve/serve.hpp"

namespace hyp::serve {
namespace {

#ifndef HYP_SERVE_GOLDEN_FILE
#error "HYP_SERVE_GOLDEN_FILE must point at the recorded goldens"
#endif

// ---------------------------------------------------------------- workload

TEST(ServeWorkload, DetMathTracksLibm) {
  for (double x : {1e-6, 0.1, 0.5, 0.9999, 1.0, 1.5, 2.0, 10.0, 12345.678}) {
    const double want = std::log(x);
    EXPECT_NEAR(det_ln(x), want, std::abs(want) * 1e-12 + 1e-12) << "ln " << x;
  }
  for (double x : {-20.0, -1.0, -0.1, 0.0, 0.1, 1.0, 5.0, 20.0}) {
    const double want = std::exp(x);
    EXPECT_NEAR(det_exp(x), want, want * 1e-12) << "exp " << x;
  }
  EXPECT_DOUBLE_EQ(det_pow(2.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(det_pow(0.0, 3.0), 0.0);
  for (double b : {0.5, 2.0, 3.0, 4096.0}) {
    for (double e : {-0.99, 0.01, 0.5, 1.0, 2.5}) {
      const double want = std::pow(b, e);
      EXPECT_NEAR(det_pow(b, e), want, want * 1e-12) << b << "^" << e;
    }
  }
}

TEST(ServeWorkload, ClientStreamsAreSeedDeterministic) {
  WorkloadParams p;
  p.keys = 256;
  p.theta = 0.9;
  p.read_pct = 80;
  p.ops_per_client = 500;
  p.rate_ops_per_s = 10000;
  p.seed = 42;

  const auto a = client_ops(p, 3);
  const auto b = client_ops(p, 3);
  ASSERT_EQ(a.size(), p.ops_per_client);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].is_update, b[i].is_update);
    EXPECT_EQ(a[i].delta, b[i].delta);
  }

  // Arrivals are an ascending Poisson schedule over in-range keys; updates
  // carry a positive delta, reads none.
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
    EXPECT_LT(a[i].key, p.keys);
    if (a[i].is_update) {
      EXPECT_GT(a[i].delta, 0);
    } else {
      EXPECT_EQ(a[i].delta, 0);
    }
  }

  // Different clients draw from independent streams.
  const auto c = client_ops(p, 4);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].key != c[i].key || a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(differs) << "client 3 and client 4 generated identical streams";

  // A different seed reshuffles a given client's stream.
  WorkloadParams p2 = p;
  p2.seed = 43;
  const auto d = client_ops(p2, 3);
  differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].key != d[i].key || a[i].arrival != d[i].arrival;
  }
  EXPECT_TRUE(differs) << "seed change did not move client 3's stream";
}

TEST(ServeWorkload, ThetaZeroDegeneratesToExactUniform) {
  // Not just statistically uniform: ZipfGenerator(n, 0) must consume the rng
  // exactly like rng.below(n), bit for bit, draw for draw.
  const std::uint64_t n = 1024;
  const ZipfGenerator zipf(n, 0.0);
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(zipf.next(a), b.below(n)) << "draw " << i;
  }
}

TEST(ServeWorkload, ZipfConstantCacheIsBitIdentical) {
  // The constructor memoizes the O(n) zetan constants per exact (n, theta).
  // The first generator computes cold and seeds the cache; later generators
  // hit it — and must sample the very same bits, draw for draw.
  const std::uint64_t n = 4099;  // an (n, theta) pair no other test uses
  const double theta = 0.77;
  const ZipfGenerator cold(n, theta);
  const ZipfGenerator cached(n, theta);
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(cold.next(a), cached.next(b)) << "draw " << i;
  }

  // Distinct (n, theta) entries don't cross-contaminate: constructing another
  // shape in between leaves the original's cached stream untouched.
  const ZipfGenerator other(n / 2, 0.5);
  EXPECT_EQ(other.n(), n / 2);
  const ZipfGenerator cached2(n, theta);
  Rng d(123);
  Rng e(123);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(cold.next(d), cached2.next(e)) << "draw " << i;
  }
}

TEST(ServeWorkload, ZipfSkewConcentratesOnHotKeys) {
  const std::uint64_t n = 1024;
  const int draws = 20000;
  const ZipfGenerator zipf(n, 0.99);
  Rng rng(7);
  std::vector<int> hits(n, 0);
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = zipf.next(rng);
    ASSERT_LT(k, n);
    ++hits[k];
  }
  // Key 0 is the hottest: with theta=0.99 it draws >10% of the traffic, far
  // above the uniform share of draws/n (~20 here).
  EXPECT_GT(hits[0], 5 * draws / static_cast<int>(n));
  EXPECT_GT(hits[0], hits[n - 1]);
}

TEST(ServeWorkload, SerialReferenceAccountsEveryOp) {
  WorkloadParams p;
  p.keys = 128;
  p.theta = 0.99;
  p.read_pct = 70;
  p.ops_per_client = 300;
  p.seed = 5;
  const int clients = 4;

  const Reference ref = serial_reference(p, clients);
  EXPECT_EQ(ref.reads + ref.updates,
            static_cast<std::uint64_t>(clients) * p.ops_per_client);

  // The reference's final per-key sums are exactly the replayed deltas.
  std::int64_t want_total = 0;
  std::uint64_t want_updates = 0;
  Time want_last = 0;
  for (int c = 0; c < clients; ++c) {
    for (const Op& op : client_ops(p, c)) {
      if (op.is_update) {
        want_total += op.delta;
        ++want_updates;
      }
      if (op.arrival > want_last) want_last = op.arrival;
    }
  }
  std::int64_t got_total = 0;
  for (std::int64_t v : ref.final_value) got_total += v;
  EXPECT_EQ(got_total, want_total);
  EXPECT_EQ(ref.updates, want_updates);
  EXPECT_EQ(ref.last_arrival, want_last);

  EXPECT_EQ(ref.checksum(), serial_reference(p, clients).checksum());
  EXPECT_EQ(ref.checksum(), state_checksum(ref.final_value));
}

// ----------------------------------------------------------------- harness

// Small but loaded serving point: 512 keys over 2 nodes, 150 ops per client
// at 4000 ops/s gives a ~37 ms horizon — long enough for the golden's crash
// (10ms+8ms) and partition (10ms+6ms) windows to land mid-run.
ServeParams small_params() {
  ServeParams p;
  p.keys = 512;
  p.theta = 0.99;
  p.read_pct = 80;
  p.clients_per_node = 1;
  p.ops_per_client = 150;
  p.rate_ops_per_s = 4000;
  p.shards_per_node = 2;
  p.op_cycles = 2000;
  p.seed = 7;
  return p;
}

void expect_clean(const ServeResult& r, std::uint64_t total_ops) {
  EXPECT_TRUE(r.state_ok) << r.lost_keys << " keys diverged from the serial "
                          << "reference (lost acked writes)";
  EXPECT_EQ(r.checksum, r.expected_checksum);
  EXPECT_EQ(r.ops, total_ops);
  EXPECT_EQ(r.reads + r.updates, r.ops);
  EXPECT_GT(r.throughput_ops_s, 0.0);
  EXPECT_LE(r.p50_us, r.p99_us);
  EXPECT_LE(r.p99_us, r.p999_us);
  EXPECT_LE(r.p999_us, r.max_us);
}

TEST(ServeHarness, FaultFreeMatchesSerialReferenceAllProtocols) {
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf,
                    dsm::ProtocolKind::kHybrid}) {
    const auto cfg = apps::make_config("myri200", kind, 2);
    const ServeParams p = small_params();
    const ServeResult r = run_serve(cfg, p);
    expect_clean(r, 2 * p.ops_per_client);
    EXPECT_EQ(r.excluded, 0u) << "no window configured, nothing may be excluded";
  }
}

// The hybrid acceptance cell: a dominant writer concentrates the update
// traffic on one node, heat migration moves the hot keys' homes there, and
// then that very node is killed mid-run — the migrated homes must revert
// (dsm::DsmSystem::on_node_dead) without losing a single acked write.
TEST(ServeHarness, HotWriterMigrationSurvivesWriterCrash) {
  apps::VmConfig cfg = apps::make_config("myri200", dsm::ProtocolKind::kHybrid, 4);
  cfg.cluster.fault =
      cluster::FaultProfile::parse("replicas=2,crash1@30ms+10ms,seed=7");
  ServeParams p;
  p.keys = 64;               // few keys: the Zipf head concentrates hard
  p.theta = 0.99;
  p.read_pct = 10;           // write-heavy, so heat accumulates fast
  p.clients_per_node = 2;
  p.ops_per_client = 300;
  p.rate_ops_per_s = 10000;  // ~30 ms horizon: migration streak, then crash
  p.shards_per_node = 2;
  p.op_cycles = 2000;
  p.seed = 7;
  p.writer_node = 1;         // all updates come from the node that will die

  const ServeResult r = run_serve(cfg, p);
  EXPECT_TRUE(r.state_ok) << r.lost_keys << " keys diverged (lost acked writes)";
  EXPECT_EQ(r.checksum, r.expected_checksum);
  // The cell is only meaningful if homes actually migrated toward the writer
  // before the crash forced them back.
  EXPECT_GT(r.run.stats.get_named("dsm_home_migrations"), 0u);
  EXPECT_GT(r.run.stats.get_named("dsm_migrations_reverted"), 0u);
}

TEST(ServeHarness, MeasurementWindowTrimsWarmupAndCooldown) {
  const auto cfg = apps::make_config("myri200", dsm::ProtocolKind::kJavaIc, 2);
  ServeParams p = small_params();
  const ServeResult base = run_serve(cfg, p);
  EXPECT_EQ(base.excluded, 0u);  // the window option is off by default

  p.warmup = 8 * kMillisecond;
  p.cooldown = 8 * kMillisecond;
  const ServeResult win = run_serve(cfg, p);

  // Trimming changes only what is *measured*: every op still executes, the
  // final state still matches the serial reference.
  EXPECT_TRUE(win.state_ok);
  EXPECT_EQ(win.ops, base.ops);
  EXPECT_GT(win.excluded, 0u);
  EXPECT_LT(win.excluded, win.ops);
  EXPECT_EQ(win.window_start, base.window_start + p.warmup);
  EXPECT_EQ(win.window_end, base.window_end - p.cooldown);

  // The latency histograms hold exactly the measured ops.
  const Stats& st = win.run.stats;
  EXPECT_EQ(st.hist(Hist::kServeReadLatency).count() +
                st.hist(Hist::kServeUpdateLatency).count(),
            win.ops - win.excluded);
  EXPECT_EQ(win.run.stats.get(Counter::kServeExcluded), win.excluded);
}

// ------------------------------------------------------------------ golden

struct ServePoint {
  const char* profile;  // none | crash | partition
  dsm::ProtocolKind protocol;
};

std::vector<ServePoint> golden_points() {
  std::vector<ServePoint> pts;
  for (const char* profile : {"none", "crash", "partition"}) {
    for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
      pts.push_back({profile, kind});
    }
  }
  return pts;
}

ServeResult run_point(const ServePoint& pt) {
  apps::VmConfig cfg = apps::make_config("myri200", pt.protocol, 4);
  if (std::strcmp(pt.profile, "crash") == 0) {
    cfg.cluster.fault =
        cluster::FaultProfile::parse("replicas=2,crash1@10ms+8ms,seed=7");
  } else if (std::strcmp(pt.profile, "partition") == 0) {
    cfg.cluster.fault =
        cluster::FaultProfile::parse("partition@10ms+6ms:1|0.2.3,seed=7");
  }
  return run_serve(cfg, small_params());
}

// One golden line:
//   <profile> <protocol> value_bits=<u64> elapsed=<u64> events=<u64>
//   switches=<u64> <counter>=<u64>...
// value is the store-state checksum, and the stat counters include the
// serve_p50_us/p99/p999/throughput summary rows — the golden therefore pins
// the latency quantiles, not just the final state.
std::string golden_line(const ServePoint& pt, const ServeResult& r) {
  std::uint64_t value_bits = 0;
  static_assert(sizeof(value_bits) == sizeof(r.run.value));
  std::memcpy(&value_bits, &r.run.value, sizeof(value_bits));
  std::ostringstream os;
  os << pt.profile << ' ' << dsm::protocol_name(pt.protocol)
     << " value_bits=" << value_bits << " elapsed=" << r.run.elapsed
     << " events=" << r.run.events_processed
     << " switches=" << r.run.context_switches;
  for (const auto& [name, v] : r.run.stats.nonzero()) os << ' ' << name << '=' << v;
  return os.str();
}

std::string point_key(const ServePoint& pt) {
  return std::string(pt.profile) + ' ' + dsm::protocol_name(pt.protocol);
}

TEST(ServeGolden, AllCellsBitIdentical) {
  std::vector<std::string> lines;
  std::map<std::string, std::string> actual;
  for (const auto& pt : golden_points()) {
    const ServeResult r = run_point(pt);
    // Every golden cell — including the crash and partition ones — must hold
    // the zero-lost-acked-writes contract before its bits are worth pinning.
    EXPECT_TRUE(r.state_ok) << point_key(pt) << ": " << r.lost_keys
                            << " keys diverged";
    const std::string line = golden_line(pt, r);
    lines.push_back(line);
    actual[point_key(pt)] = line;
  }

  if (std::getenv("HYP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(HYP_SERVE_GOLDEN_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << HYP_SERVE_GOLDEN_FILE;
    out << "# Serve determinism goldens: 512-key store on myri200 x 4 nodes,\n"
           "# 4 clients x 150 ops @ 4000 ops/s, theta=0.99, read%=80, seed=7;\n"
           "# cells = {fault-free, crash1@10ms+8ms K=2, partition@10ms+6ms\n"
           "# 1|0.2.3} x both protocols. Regenerate with\n"
           "# HYP_UPDATE_GOLDENS=1 ./serve_tests -- and justify the semantic\n"
           "# change in the commit message.\n";
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "goldens re-recorded at " << HYP_SERVE_GOLDEN_FILE;
  }

  std::ifstream in(HYP_SERVE_GOLDEN_FILE);
  ASSERT_TRUE(in.good()) << "missing goldens; record with HYP_UPDATE_GOLDENS=1";
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Key = first two tokens (profile, protocol).
    std::istringstream is(line);
    std::string a, b;
    is >> a >> b;
    expected[a + ' ' + b] = line;
  }
  ASSERT_EQ(expected.size(), actual.size()) << "golden file is stale";
  for (const auto& [key, want] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "no run for golden point " << key;
    EXPECT_EQ(it->second, want)
        << "serving run drifted at " << key << "\n  expected: " << want
        << "\n  actual:   " << it->second;
  }
}

TEST(ServeGolden, BackToBackRunsIdentical) {
  // Same seed, same bits within one binary run — catches host-address-
  // dependent ordering leaking into the serving path. The crash cell is the
  // most schedule-sensitive one.
  const ServePoint pt{"crash", dsm::ProtocolKind::kJavaPf};
  const ServeResult a = run_point(pt);
  const ServeResult b = run_point(pt);
  EXPECT_EQ(golden_line(pt, a), golden_line(pt, b));
}

}  // namespace
}  // namespace hyp::serve
