// Property-based Java-Memory-Model tests.
//
// Random data-race-free programs (every shared access under a monitor) must
// behave sequentially consistently regardless of protocol, node count or
// seed. Two families:
//   * commutative updates — random additions to random cells; the final sum
//     is interleaving-independent, so any lost/duplicated update is caught;
//   * invariant preservation — "bank transfers" between account pairs; the
//     pair sum must hold at every locked read, catching stale reads under a
//     monitor (the exact bug a broken invalidation protocol would produce).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::hyperion {
namespace {

using Param = std::tuple<dsm::ProtocolKind, int /*nodes*/, std::uint64_t /*seed*/>;

class JmmPropertyTest : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, JmmPropertyTest,
    ::testing::Combine(::testing::Values(dsm::ProtocolKind::kJavaIc,
                                         dsm::ProtocolKind::kJavaPf),
                       ::testing::Values(1, 2, 4), ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(dsm::protocol_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

VmConfig cfg_for(dsm::ProtocolKind kind, int nodes) {
  VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  return cfg;
}

TEST_P(JmmPropertyTest, CommutativeUpdatesNeverLoseWrites) {
  const auto [kind, nodes, seed] = GetParam();
  constexpr int kThreads = 6;
  constexpr int kCells = 8;
  constexpr int kOpsPerThread = 40;

  // Precompute each thread's deterministic op list and the expected sums.
  struct Op {
    int cell;
    std::int64_t delta;
  };
  std::vector<std::vector<Op>> plans(kThreads);
  std::vector<std::int64_t> expected(kCells, 0);
  Rng rng(seed * 7919);
  for (auto& plan : plans) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      Op op{static_cast<int>(rng.below(kCells)),
            static_cast<std::int64_t>(rng.range(-50, 50))};
      expected[static_cast<std::size_t>(op.cell)] += op.delta;
      plan.push_back(op);
    }
  }

  HyperionVM vm(cfg_for(kind, nodes));
  std::vector<std::int64_t> final_values(kCells, -1);
  dsm::with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto cells = main.new_array<std::int64_t>(kCells);
      auto lock = main.new_cell<std::int32_t>(0);
      std::vector<JThread> ts;
      for (int w = 0; w < kThreads; ++w) {
        ts.push_back(main.start_thread("w" + std::to_string(w), [=, &plans](JavaEnv& env) {
          Mem<P> mem(env.ctx());
          for (const auto& op : plans[static_cast<std::size_t>(w)]) {
            env.synchronized(lock.addr, [&] {
              mem.aput(cells, op.cell, mem.aget(cells, op.cell) + op.delta);
            });
          }
        }));
      }
      for (auto& t : ts) main.join(t);
      Mem<P> mem(main.ctx());
      for (int c = 0; c < kCells; ++c) final_values[static_cast<std::size_t>(c)] = mem.aget(cells, c);
    });
  });
  EXPECT_EQ(final_values, expected);
}

TEST_P(JmmPropertyTest, TransferInvariantHoldsUnderTheLock) {
  const auto [kind, nodes, seed] = GetParam();
  constexpr int kThreads = 4;
  constexpr int kAccounts = 6;  // even; paired (0,1), (2,3), ...
  constexpr std::int64_t kInitial = 1000;
  constexpr int kOpsPerThread = 30;

  HyperionVM vm(cfg_for(kind, nodes));
  int violations = 0;
  dsm::with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto accounts = main.new_array<std::int64_t>(kAccounts);
      auto lock = main.new_cell<std::int32_t>(0);
      {
        Mem<P> mem(main.ctx());
        for (int a = 0; a < kAccounts; ++a) mem.aput(accounts, a, kInitial);
      }
      std::vector<JThread> ts;
      for (int w = 0; w < kThreads; ++w) {
        ts.push_back(main.start_thread(
            "xfer" + std::to_string(w), [=, &violations](JavaEnv& env) {
              Mem<P> mem(env.ctx());
              Rng rng(seed * 1009 + static_cast<std::uint64_t>(w));
              for (int i = 0; i < kOpsPerThread; ++i) {
                const int pair = static_cast<int>(rng.below(kAccounts / 2));
                const int from = 2 * pair;
                const std::int64_t amount = rng.range(1, 100);
                env.synchronized(lock.addr, [&] {
                  const auto a = mem.aget(accounts, from);
                  const auto b = mem.aget(accounts, from + 1);
                  if (a + b != 2 * kInitial) ++violations;  // stale read!
                  mem.aput(accounts, from, a - amount);
                  mem.aput(accounts, from + 1, b + amount);
                });
              }
            }));
      }
      for (auto& t : ts) main.join(t);
      Mem<P> mem(main.ctx());
      std::int64_t total = 0;
      for (int a = 0; a < kAccounts; ++a) total += mem.aget(accounts, a);
      EXPECT_EQ(total, kAccounts * kInitial);
    });
  });
  EXPECT_EQ(violations, 0);
}

TEST_P(JmmPropertyTest, ProtocolsAgreeOnProgramResults) {
  // The same seeded program must compute identical values under java_ic and
  // java_pf (the paper's premise: the protocols differ in cost, not
  // semantics). Times differ; results may not.
  const auto [kind, nodes, seed] = GetParam();
  (void)kind;  // this test always runs both protocols

  auto result_under = [&](dsm::ProtocolKind k) {
    HyperionVM vm(cfg_for(k, nodes));
    std::int64_t result = 0;
    dsm::with_policy(k, [&](auto policy) {
      using P = decltype(policy);
      vm.run_main([&](JavaEnv& main) {
        auto acc = main.new_cell<std::int64_t>(0);
        std::vector<JThread> ts;
        for (int w = 0; w < 4; ++w) {
          ts.push_back(main.start_thread("w" + std::to_string(w), [=](JavaEnv& env) {
            Mem<P> mem(env.ctx());
            Rng rng(seed + static_cast<std::uint64_t>(w));
            for (int i = 0; i < 20; ++i) {
              const auto x = static_cast<std::int64_t>(rng.below(1000));
              env.synchronized(acc.addr, [&] { mem.put(acc, mem.get(acc) * 31 + x); });
            }
          }));
        }
        for (auto& t : ts) main.join(t);
        Mem<P> mem(main.ctx());
        result = mem.get(acc);
      });
    });
    return result;
  };
  // Note: *31+x is order-sensitive, so we compare each protocol against
  // itself across repeated runs (determinism), and both protocols against
  // each other only when the engine schedule is protocol-independent —
  // which it is not in general. Hence: determinism check per protocol.
  EXPECT_EQ(result_under(dsm::ProtocolKind::kJavaIc), result_under(dsm::ProtocolKind::kJavaIc));
  EXPECT_EQ(result_under(dsm::ProtocolKind::kJavaPf), result_under(dsm::ProtocolKind::kJavaPf));
}

TEST_P(JmmPropertyTest, PerCellLocksNeverLoseWrites) {
  // Finer-grained locking: each cell has its OWN monitor (more concurrency,
  // more independent acquire/release interleavings), still data-race-free.
  const auto [kind, nodes, seed] = GetParam();
  constexpr int kThreads = 5;
  constexpr int kCells = 4;
  constexpr int kOpsPerThread = 30;

  struct Op {
    int cell;
    std::int64_t delta;
  };
  std::vector<std::vector<Op>> plans(kThreads);
  std::vector<std::int64_t> expected(kCells, 0);
  Rng rng(seed * 52361 + 7);
  for (auto& plan : plans) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      Op op{static_cast<int>(rng.below(kCells)),
            static_cast<std::int64_t>(rng.range(1, 20))};
      expected[static_cast<std::size_t>(op.cell)] += op.delta;
      plan.push_back(op);
    }
  }

  HyperionVM vm(cfg_for(kind, nodes));
  std::vector<std::int64_t> final_values(kCells, -1);
  dsm::with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto cells = main.new_array<std::int64_t>(kCells);
      // One lock object per cell, spread over the nodes' heaps.
      std::vector<GRef<std::int32_t>> locks;
      for (int c = 0; c < kCells; ++c) locks.push_back(main.new_cell<std::int32_t>(0));
      std::vector<JThread> ts;
      for (int w = 0; w < kThreads; ++w) {
        ts.push_back(main.start_thread("w" + std::to_string(w), [=, &plans](JavaEnv& env) {
          Mem<P> mem(env.ctx());
          for (const auto& op : plans[static_cast<std::size_t>(w)]) {
            env.synchronized(locks[static_cast<std::size_t>(op.cell)].addr, [&] {
              mem.aput(cells, op.cell, mem.aget(cells, op.cell) + op.delta);
            });
          }
        }));
      }
      for (auto& t : ts) main.join(t);
      Mem<P> mem(main.ctx());
      for (int c = 0; c < kCells; ++c) {
        final_values[static_cast<std::size_t>(c)] = mem.aget(cells, c);
      }
    });
  });
  EXPECT_EQ(final_values, expected);
}

}  // namespace
}  // namespace hyp::hyperion

