// Edge cases and failure injection for the DSM layer: page-size variants,
// field widths, region boundaries, malformed messages, misdirected updates.
#include <gtest/gtest.h>

#include "dsm/access.hpp"
#include "dsm/dsm.hpp"

namespace hyp::dsm {
namespace {

cluster::ClusterParams params_with_page(std::size_t page_bytes) {
  auto p = cluster::ClusterParams::myrinet200();
  p.default_nodes = 2;
  p.page_bytes = page_bytes;
  return p;
}

class PageSizeSweep : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Pages, PageSizeSweep,
                         ::testing::Values(std::size_t{512}, std::size_t{1024},
                                           std::size_t{4096}, std::size_t{16384}),
                         [](const auto& info) { return "page" + std::to_string(info.param); });

TEST_P(PageSizeSweep, RemoteRoundTripWorksAtEveryPageSize) {
  cluster::Cluster c(params_with_page(GetParam()), 2);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaPf);
  EXPECT_EQ(dsm.layout().page_bytes(), GetParam());
  c.spawn_thread(1, "t", [&] {
    auto t = dsm.make_thread(1);
    const Gva a = dsm.alloc(0, 8);
    dsm.poke_home<std::int64_t>(a, 1234);
    EXPECT_EQ((PfPolicy::get<std::int64_t>(*t, a)), 1234);
    PfPolicy::put<std::int64_t>(*t, a, 4321);
    dsm.update_main_memory(*t);
    EXPECT_EQ(dsm.read_home<std::int64_t>(a), 4321);
    EXPECT_EQ(t->stats->get(Counter::kPageFetchBytes), GetParam());
  });
  c.run();
}

class FieldWidthSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Widths, FieldWidthSweep, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

template <typename T>
void width_round_trip(DsmSystem& dsm, ThreadCtx& t, T value) {
  const Gva a = dsm.alloc(0, sizeof(T), sizeof(T));
  IcPolicy::put<T>(t, a, value);
  EXPECT_EQ((IcPolicy::get<T>(t, a)), value);
  dsm.update_main_memory(t);
  EXPECT_EQ(dsm.read_home<T>(a), value);
}

TEST_P(FieldWidthSweep, WriteLogHandlesEveryJavaFieldWidth) {
  cluster::Cluster c(params_with_page(4096), 2);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaIc);
  c.spawn_thread(1, "t", [&] {
    auto t = dsm.make_thread(1);
    switch (GetParam()) {
      case 1: width_round_trip<std::int8_t>(dsm, *t, -7); break;
      case 2: width_round_trip<std::int16_t>(dsm, *t, -30000); break;
      case 4: width_round_trip<std::int32_t>(dsm, *t, -2000000000); break;
      case 8: width_round_trip<std::int64_t>(dsm, *t, -4'000'000'000LL); break;
      default: FAIL();
    }
  });
  c.run();
}

TEST(DsmEdge, LastPageOfTheRegionIsUsable) {
  cluster::Cluster c(params_with_page(4096), 2);
  DsmSystem dsm(&c, std::size_t{1} << 20, ProtocolKind::kJavaPf);
  // Node 1 owns the top half; its last allocation touches the final page.
  const Gva total = dsm.layout().total_bytes();
  c.spawn_thread(0, "t", [&] {
    auto t = dsm.make_thread(0);
    // Fill node 1's zone up to its last 8 bytes.
    const Gva last = dsm.alloc(1, dsm.layout().zone_end(1) - dsm.layout().zone_begin(1) - 8);
    const Gva tail = dsm.alloc(1, 8);
    EXPECT_EQ(tail + 8, total);
    dsm.poke_home<std::int64_t>(tail, 99);
    EXPECT_EQ((PfPolicy::get<std::int64_t>(*t, tail)), 99);
    (void)last;
  });
  c.run();
}

TEST(DsmEdge, FloatAndDoubleFieldsRoundTrip) {
  cluster::Cluster c(params_with_page(4096), 2);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaIc);
  c.spawn_thread(1, "t", [&] {
    auto t = dsm.make_thread(1);
    const Gva f = dsm.alloc(0, 4, 4);
    const Gva d = dsm.alloc(0, 8, 8);
    IcPolicy::put<float>(*t, f, 2.5f);
    IcPolicy::put<double>(*t, d, -1e100);
    dsm.update_main_memory(*t);
    EXPECT_EQ(dsm.read_home<float>(f), 2.5f);
    EXPECT_EQ(dsm.read_home<double>(d), -1e100);
  });
  c.run();
}

TEST(DsmEdge, InterleavedPutsToTwoHomesFlushToBoth) {
  cluster::Cluster c(params_with_page(4096), 3);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaIc);
  c.spawn_thread(0, "t", [&] {
    auto t = dsm.make_thread(0);
    const Gva on1 = dsm.alloc(1, 8);
    const Gva on2 = dsm.alloc(2, 8);
    for (int i = 0; i < 10; ++i) {
      IcPolicy::put<std::int64_t>(*t, on1, i);
      IcPolicy::put<std::int64_t>(*t, on2, -i);
    }
    dsm.update_main_memory(*t);
    EXPECT_EQ(dsm.read_home<std::int64_t>(on1), 9);
    EXPECT_EQ(dsm.read_home<std::int64_t>(on2), -9);
    // One (deduplicated) update message per home.
    EXPECT_EQ(t->stats->get(Counter::kUpdatesSent), 2u);
  });
  c.run();
}

TEST(DsmEdgeDeath, MisdirectedFieldUpdateAborts) {
  // An update record whose address is not homed at the receiving node must
  // be rejected, not silently applied.
  cluster::Cluster c(params_with_page(4096), 3);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaIc);
  c.spawn_thread(0, "attacker", [&] {
    const Gva on2 = dsm.alloc(2, 8);  // homed on node 2
    Buffer msg;
    std::vector<WriteLogEntry> entries = {{on2, 8, 1}};
    WriteLog::encode(&msg, entries);
    c.call(0, 1, svc::kUpdateFields, std::move(msg));  // ...sent to node 1
  });
  EXPECT_DEATH(c.run(), "non-home");
}

TEST(DsmEdgeDeath, MisdirectedPageRequestAborts) {
  cluster::Cluster c(params_with_page(4096), 3);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaPf);
  c.spawn_thread(0, "attacker", [&] {
    Buffer msg;
    // Page 0 is homed on node 0; ask node 1 for it.
    msg.put<std::uint32_t>(0);
    c.call(0, 1, svc::kPageRequest, std::move(msg));
  });
  EXPECT_DEATH(c.run(), "non-home");
}

TEST(DsmEdgeDeath, TruncatedUpdateMessageAborts) {
  cluster::Cluster c(params_with_page(4096), 2);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaIc);
  c.spawn_thread(0, "attacker", [&] {
    Buffer msg;
    msg.put<std::uint32_t>(5);  // claims 5 entries, carries none
    c.call(0, 1, svc::kUpdateFields, std::move(msg));
  });
  EXPECT_DEATH(c.run(), "underrun");
}

TEST(DsmEdge, ManyThreadsOneNodeShareTheCache) {
  // §3.1: "at most one copy of an object may exist on a node and this copy
  // is shared by all the threads running on that node".
  cluster::Cluster c(params_with_page(4096), 2);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaPf);
  const Gva a = dsm.alloc(0, 8);
  dsm.poke_home<std::int64_t>(a, 5);
  for (int i = 0; i < 8; ++i) {
    c.spawn_thread(1, "t" + std::to_string(i), [&] {
      auto t = dsm.make_thread(1);
      EXPECT_EQ((PfPolicy::get<std::int64_t>(*t, a)), 5);
    });
  }
  c.run();
  EXPECT_EQ(c.node(1).stats().get(Counter::kPageFetches), 1u);  // one copy per node
}

TEST(DsmEdge, InvalidateOnEmptyCacheIsCheapAndSafe) {
  cluster::Cluster c(params_with_page(4096), 2);
  DsmSystem dsm(&c, std::size_t{4} << 20, ProtocolKind::kJavaPf);
  c.spawn_thread(0, "t", [&] {
    auto t = dsm.make_thread(0);
    dsm.invalidate_cache(*t);
    dsm.update_main_memory(*t);  // nothing to flush
    EXPECT_EQ(t->stats->get(Counter::kInvalidations), 0u);
    EXPECT_EQ(t->stats->get(Counter::kUpdatesSent), 0u);
  });
  c.run();
}

TEST(DsmEdge, ZoneExhaustionDiagnosesTheRegionSize) {
  cluster::Cluster c(params_with_page(4096), 2);
  DsmSystem dsm(&c, std::size_t{1} << 20, ProtocolKind::kJavaIc);
  EXPECT_DEATH(dsm.alloc(0, std::size_t{2} << 20), "zone exhausted");
}

}  // namespace
}  // namespace hyp::dsm
