// Java API subsystem tests: JRandom (JDK-compatible LCG), arraycopy edge
// cases, barrier edge cases, currentTimeMillis.
#include <gtest/gtest.h>

#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::hyperion {
namespace {

VmConfig test_config(dsm::ProtocolKind kind, int nodes) {
  VmConfig cfg;
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  return cfg;
}

// --- JRandom: values cross-checked against java.util.Random ----------------

TEST(JRandom, MatchesJavaSeed42) {
  // Reference sequence from `new java.util.Random(42).nextInt()`.
  japi::JRandom r(42);
  EXPECT_EQ(r.next_int(), -1170105035);
  EXPECT_EQ(r.next_int(), 234785527);
  EXPECT_EQ(r.next_int(), -1360544799);
}

TEST(JRandom, MatchesJavaBoundedSeed42) {
  // Reference: new java.util.Random(42): nextInt(100) -> 30, 63, 48, 84, 70.
  japi::JRandom r(42);
  EXPECT_EQ(r.next_int(100), 30);
  EXPECT_EQ(r.next_int(100), 63);
  EXPECT_EQ(r.next_int(100), 48);
  EXPECT_EQ(r.next_int(100), 84);
  EXPECT_EQ(r.next_int(100), 70);
}

TEST(JRandom, MatchesJavaLongAndDouble) {
  {
    japi::JRandom r(42);
    EXPECT_EQ(r.next_long(), -5025562857975149833LL);  // Random(42).nextLong()
  }
  {
    japi::JRandom r(42);
    EXPECT_NEAR(r.next_double(), 0.7275636800328681, 1e-15);  // nextDouble()
  }
}

TEST(JRandom, PowerOfTwoBoundsAreUniformish) {
  japi::JRandom r(7);
  int histogram[8] = {};
  for (int i = 0; i < 8000; ++i) ++histogram[r.next_int(8)];
  for (int count : histogram) EXPECT_NEAR(count, 1000, 150);
}

TEST(JRandom, BoundedStaysInRange) {
  japi::JRandom r(123);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_int(37);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 37);
  }
}

TEST(JRandom, SetSeedRestartsSequence) {
  japi::JRandom r(5);
  const auto first = r.next_int();
  r.next_int();
  r.set_seed(5);
  EXPECT_EQ(r.next_int(), first);
}

// --- arraycopy ---------------------------------------------------------------

class JapiProtocolTest : public ::testing::TestWithParam<dsm::ProtocolKind> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, JapiProtocolTest,
                         ::testing::Values(dsm::ProtocolKind::kJavaIc,
                                           dsm::ProtocolKind::kJavaPf),
                         [](const auto& info) { return dsm::protocol_name(info.param); });

TEST_P(JapiProtocolTest, ArrayCopyZeroLengthIsANoOp) {
  HyperionVM vm(test_config(GetParam(), 1));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      Mem<P> mem(main.ctx());
      auto a = main.new_array<std::int32_t>(4);
      auto b = main.new_array<std::int32_t>(4);
      mem.aput(b, 0, std::int32_t{9});
      japi::arraycopy<P>(main, a, 0, b, 0, 0);
      EXPECT_EQ(mem.aget(b, 0), 9);
    });
  });
}

TEST_P(JapiProtocolTest, ArrayCopyAcrossNodes) {
  // Source homed on the main node, destination on a worker's node.
  HyperionVM vm(test_config(GetParam(), 2));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      Mem<P> mem(main.ctx());
      auto src = main.new_array<std::int64_t>(64);
      for (int i = 0; i < 64; ++i) mem.aput(src, i, static_cast<std::int64_t>(i * 3));
      std::int64_t sum = 0;
      auto t = main.start_thread("copier", [&, src](JavaEnv& env) {
        Mem<P> m(env.ctx());
        auto dst = env.new_array<std::int64_t>(64);
        japi::arraycopy<P>(env, src, 0, dst, 0, 64);
        for (int i = 0; i < 64; ++i) sum += m.aget(dst, i);
      });
      main.join(t);
      EXPECT_EQ(sum, 3 * 63 * 64 / 2);
    });
  });
}

// --- barrier edges ------------------------------------------------------------

TEST_P(JapiProtocolTest, SinglePartyBarrierNeverBlocks) {
  HyperionVM vm(test_config(GetParam(), 1));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto barrier = japi::JBarrier::create(main, 1);
      for (int i = 0; i < 5; ++i) barrier.template await<P>(main);
      SUCCEED();
    });
  });
}

TEST_P(JapiProtocolTest, BarrierManyGenerationsManyParties) {
  constexpr int kParties = 6;
  constexpr int kRounds = 20;
  HyperionVM vm(test_config(GetParam(), 3));
  int finished = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto barrier = japi::JBarrier::create(main, kParties);
      std::vector<JThread> ts;
      for (int w = 0; w < kParties; ++w) {
        ts.push_back(main.start_thread("p" + std::to_string(w), [=, &finished](JavaEnv& env) {
          for (int r = 0; r < kRounds; ++r) {
            env.charge_cycles(static_cast<std::uint64_t>((w + 1) * 100));
            barrier.template await<P>(env);
          }
          ++finished;
        }));
      }
      for (auto& t : ts) main.join(t);
    });
  });
  EXPECT_EQ(finished, kParties);
}

TEST(Japi, CurrentTimeMillisMonotonic) {
  HyperionVM vm(test_config(dsm::ProtocolKind::kJavaPf, 1));
  vm.run_main([&](JavaEnv& main) {
    auto t0 = japi::current_time_millis(main);
    main.ctx().clock.charge(5 * kMillisecond);
    main.ctx().clock.flush();
    auto t1 = japi::current_time_millis(main);
    EXPECT_GE(t1 - t0, 5);
  });
}

}  // namespace
}  // namespace hyp::hyperion
