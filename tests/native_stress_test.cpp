// Stress tests of the native backend: real threads hammering real
// mprotect/SIGSEGV detection concurrently.
#include <gtest/gtest.h>

#include <atomic>

#include "native/native_vm.hpp"

namespace hyp::native {
namespace {

NativeVm::Config cfg(Protocol p, int nodes) {
  NativeVm::Config c;
  c.protocol = p;
  c.nodes = nodes;
  c.region_bytes = std::size_t{32} << 20;
  return c;
}

class NativeStress : public ::testing::TestWithParam<Protocol> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, NativeStress,
                         ::testing::Values(Protocol::kJavaIc, Protocol::kJavaPf),
                         [](const auto& info) {
                           return info.param == Protocol::kJavaIc ? "java_ic" : "java_pf";
                         });

TEST_P(NativeStress, ManyThreadsManyPagesConcurrentFaulting) {
  // 8 real threads stream over 64 remote pages simultaneously: concurrent
  // SIGSEGVs on distinct pages, racing fetches on shared ones.
  static constexpr int kPages = 64;
  static constexpr int kThreads = 8;
  NativeVm vm(cfg(GetParam(), 3));
  std::atomic<std::int64_t> total{0};
  vm.run_main([&](NativeEnv& env) {
    const Gva base = vm.dsm().alloc(0, kPages * 4096, 4096);
    for (int p = 0; p < kPages; ++p) {
      vm.dsm().poke_home<std::int64_t>(base + static_cast<Gva>(p) * 4096, p);
    }
    for (int t = 0; t < kThreads; ++t) {
      vm.start_thread([base, &total](NativeEnv& worker) {
        std::int64_t local = 0;
        for (int p = 0; p < kPages; ++p) {
          local += worker.get<std::int64_t>(base + static_cast<Gva>(p) * 4096);
        }
        total += local;
      });
    }
    vm.join_all(env);
  });
  EXPECT_EQ(total.load(), static_cast<std::int64_t>(kThreads) * kPages * (kPages - 1) / 2);
  if (GetParam() == Protocol::kJavaPf) {
    EXPECT_GE(vm.dsm().counter(Counter::kPageFaults), kPages);
  }
}

TEST_P(NativeStress, RepeatedInvalidationCycles) {
  // Threads alternate: read remote data, get invalidated, read again — the
  // protection flip-flop path under concurrency.
  NativeVm vm(cfg(GetParam(), 2));
  std::atomic<int> mismatches{0};
  vm.run_main([&](NativeEnv& env) {
    const Gva a = vm.dsm().alloc(0, 8);
    vm.dsm().poke_home<std::int64_t>(a, 7);
    for (int t = 0; t < 4; ++t) {
      vm.start_thread([a, &vm, &mismatches](NativeEnv& worker) {
        if (worker.node() == 0) return;  // stay remote
        for (int round = 0; round < 200; ++round) {
          if (worker.get<std::int64_t>(a) != 7) ++mismatches;
          vm.dsm().invalidate_cache(worker.ctx());
        }
      });
    }
    vm.join_all(env);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_P(NativeStress, MonitorContentionAcrossManyObjects) {
  static constexpr int kObjects = 8;
  static constexpr int kThreads = 6;
  static constexpr int kReps = 200;
  NativeVm vm(cfg(GetParam(), 3));
  std::int64_t totals[kObjects] = {};
  vm.run_main([&](NativeEnv& env) {
    Gva cells[kObjects];
    for (int o = 0; o < kObjects; ++o) cells[o] = env.new_cell<std::int64_t>(0);
    for (int t = 0; t < kThreads; ++t) {
      vm.start_thread([&cells, t](NativeEnv& worker) {
        for (int i = 0; i < kReps; ++i) {
          const Gva obj = cells[(t + i) % kObjects];
          worker.synchronized(obj, [&] {
            worker.put<std::int64_t>(obj, worker.get<std::int64_t>(obj) + 1);
          });
        }
      });
    }
    vm.join_all(env);
    for (int o = 0; o < kObjects; ++o) totals[o] = env.get<std::int64_t>(cells[o]);
  });
  std::int64_t sum = 0;
  for (std::int64_t v : totals) sum += v;
  EXPECT_EQ(sum, static_cast<std::int64_t>(kThreads) * kReps);
}

TEST_P(NativeStress, FlushInvalidateVsConcurrentWriterLosesNoUpdates) {
  // Regression test for the java_pf lost-update window that made
  // MonitorContentionAcrossManyObjects flake: thread A's monitor acquire
  // runs update_main_memory (twin diff) and then invalidate_cache on a page
  // while sibling thread B — inside its own, unrelated critical section —
  // stores to the same page. B's store landed after A's diff pass; the old
  // invalidate then threw away the twin and the page, so B's flush skipped
  // the page and the next fetch re-read stale home bytes.
  //
  // The program below is perfectly synchronized: every thread increments
  // only its OWN cell under its OWN monitor. Cells share one node-0 home
  // page, so the only way to lose an increment is the protocol-level window
  // above. Pre-fix this failed in well under 100 runs; it must now pass
  // 100 consecutive runs (scripts/race_smoke.sh repeats it).
  static constexpr int kThreads = 6;
  static constexpr int kReps = 2000;
  NativeVm vm(cfg(GetParam(), 3));
  std::int64_t finals[kThreads] = {};
  vm.run_main([&](NativeEnv& env) {
    const Gva page = env.alloc_raw(4096, 4096);  // node-0 home, one page
    Gva cells[kThreads];
    for (int t = 0; t < kThreads; ++t) {
      cells[t] = page + static_cast<Gva>(t) * 64;
      vm.dsm().poke_home<std::int64_t>(cells[t], 0);
    }
    for (int t = 0; t < kThreads; ++t) {
      const Gva mine = cells[t];
      vm.start_thread([mine](NativeEnv& worker) {
        for (int i = 0; i < kReps; ++i) {
          worker.synchronized(mine, [&] {
            worker.put<std::int64_t>(mine, worker.get<std::int64_t>(mine) + 1);
          });
        }
      });
    }
    vm.join_all(env);
    for (int t = 0; t < kThreads; ++t) finals[t] = env.get<std::int64_t>(cells[t]);
  });
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(finals[t], kReps) << "thread " << t << " lost increments";
  }
}

TEST_P(NativeStress, WaitNotifyPipelineUnderLoad) {
  // A bounded "queue" of one slot: producers and consumers coordinate
  // entirely through wait/notify on the slot's monitor.
  static constexpr int kItems = 300;
  NativeVm vm(cfg(GetParam(), 2));
  std::int64_t consumed_sum = 0;
  vm.run_main([&](NativeEnv& env) {
    const Gva full = env.new_cell<std::int64_t>(0);
    const Gva value = env.new_cell<std::int64_t>(0);
    vm.start_thread([=](NativeEnv& producer) {
      for (int i = 1; i <= kItems; ++i) {
        producer.monitor_enter(full);
        while (producer.get<std::int64_t>(full) != 0) producer.wait(full);
        producer.put<std::int64_t>(value, i);
        producer.put<std::int64_t>(full, 1);
        producer.notify_all(full);
        producer.monitor_exit(full);
      }
    });
    vm.start_thread([=, &consumed_sum](NativeEnv& consumer) {
      for (int i = 0; i < kItems; ++i) {
        consumer.monitor_enter(full);
        while (consumer.get<std::int64_t>(full) != 1) consumer.wait(full);
        consumed_sum += consumer.get<std::int64_t>(value);
        consumer.put<std::int64_t>(full, 0);
        consumer.notify_all(full);
        consumer.monitor_exit(full);
      }
    });
    vm.join_all(env);
  });
  EXPECT_EQ(consumed_sum, static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

}  // namespace
}  // namespace hyp::native
