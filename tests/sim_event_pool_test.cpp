// Unit tests for the engine's pooled event queue: (time, seq) ordering must
// be exact, callback slots must recycle through the free list, and the
// steady-state churn path must be allocation-free.
//
// The allocation-counting hook below replaces the global operator new/delete
// for THIS test binary only. It merely counts; behavior is unchanged, so the
// other tests in the binary are unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/engine.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hyp::sim {
namespace {

TEST(EventPool, CallbacksFireInTimeThenSeqOrder) {
  Engine eng;
  std::vector<int> order;
  eng.post(30, [&] { order.push_back(3); });
  eng.post(10, [&] { order.push_back(1); });
  eng.post(20, [&] { order.push_back(2); });
  // Same-time events keep creation order (the seq tiebreak).
  eng.post(20, [&] { order.push_back(21); });
  eng.post(10, [&] { order.push_back(11); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2, 21, 3}));
}

TEST(EventPool, SeqTiebreakInterleavesFibersAndCallbacksByCreation) {
  Engine eng;
  std::vector<int> order;
  // All at t=0: fiber spawn (wakeup event), then two callbacks, then another
  // fiber. Creation sequence must be the execution sequence.
  eng.spawn("a", [&] { order.push_back(1); });
  eng.post(0, [&] { order.push_back(2); });
  eng.post(0, [&] { order.push_back(3); });
  eng.spawn("b", [&] { order.push_back(4); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventPool, FreeListRecyclesCallbackSlots) {
  Engine eng;
  int fired = 0;
  auto storm = [&](int count) {
    for (int i = 0; i < count; ++i) {
      eng.post(eng.now() + 1 + i, [&fired] { ++fired; });
    }
    eng.run();
  };
  storm(64);
  const std::size_t slots_after_warmup = eng.callback_pool_slots();
  EXPECT_GE(slots_after_warmup, 64u);
  // Every slot must be back on the free list at quiescence.
  EXPECT_EQ(eng.callback_pool_free(), slots_after_warmup);

  // Same storm again: all slots come from the free list, none are created.
  storm(64);
  EXPECT_EQ(eng.callback_pool_slots(), slots_after_warmup);
  EXPECT_EQ(eng.callback_pool_free(), slots_after_warmup);
  EXPECT_EQ(fired, 128);
}

TEST(EventPool, SpawnSleepUnparkChurnKeepsOrderingAndQuiesces) {
  Engine eng;
  std::vector<Fiber*> sleepers;
  std::uint64_t wakeups = 0;
  // Sleepers park; a driver unparks them in a deterministic rotation while
  // itself sleeping — heavy (time, seq) churn across the heap.
  for (int i = 0; i < 16; ++i) {
    sleepers.push_back(eng.spawn("sleeper" + std::to_string(i), [&eng, &wakeups] {
      for (int r = 0; r < 50; ++r) {
        eng.park();
        ++wakeups;
        eng.sleep_for(3);
      }
    }));
  }
  eng.spawn("driver", [&] {
    for (int r = 0; r < 50; ++r) {
      for (Fiber* f : sleepers) eng.unpark(f);
      eng.sleep_for(10);
    }
  });
  const auto stuck = eng.run();
  EXPECT_TRUE(stuck.empty());
  EXPECT_EQ(wakeups, 16u * 50u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(EventPool, SteadyStateFiberChurnIsAllocationFree) {
  Engine eng;
  std::uint64_t during = 1;  // poisoned; set by the fiber
  eng.spawn("churn", [&] {
    // Warm up: first sleeps may grow the event heap's backing vector.
    for (int i = 0; i < 256; ++i) eng.sleep_for(5);
    const std::uint64_t before = allocs();
    for (int i = 0; i < 20'000; ++i) eng.sleep_for(5);
    during = allocs() - before;
  });
  eng.run();
  EXPECT_EQ(during, 0u) << "sleep/wakeup events must not allocate";
}

TEST(EventPool, SteadyStatePostedCallbacksAreAllocationFree) {
  Engine eng;
  std::uint64_t during = 1;
  std::uint64_t sink = 0;
  eng.spawn("poster", [&] {
    auto post_round = [&] {
      // Small capture: must ride the UniqueFunction inline buffer and a
      // recycled pool slot.
      for (int k = 0; k < 32; ++k) {
        eng.post(eng.now() + 1 + k, [&sink, k] { sink += static_cast<std::uint64_t>(k); });
      }
      eng.sleep_for(64);  // let them all fire
    };
    for (int i = 0; i < 8; ++i) post_round();  // warm slots + free list
    const std::uint64_t before = allocs();
    for (int i = 0; i < 512; ++i) post_round();
    during = allocs() - before;
  });
  eng.run();
  EXPECT_EQ(during, 0u) << "post() must reuse pooled slots and inline storage";
  EXPECT_GT(sink, 0u);
}

TEST(EventPool, LargeCallbacksStillWorkViaHeapPath) {
  // Captures bigger than the inline buffer fall back to heap storage —
  // correctness must be unaffected.
  Engine eng;
  struct Big {
    std::uint64_t words[40] = {};
  } big;
  big.words[39] = 1234;
  std::uint64_t seen = 0;
  eng.post(5, [big, &seen] { seen = big.words[39]; });
  eng.run();
  EXPECT_EQ(seen, 1234u);
}

}  // namespace
}  // namespace hyp::sim
