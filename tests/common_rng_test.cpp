#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hyp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(77);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 2000 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> histogram(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++histogram[rng.below(10)];
  for (int count : histogram) {
    EXPECT_NEAR(count, draws / 10, draws / 100);
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(42);
  std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(42);
  EXPECT_EQ(rng.next(), first);
}

}  // namespace
}  // namespace hyp
