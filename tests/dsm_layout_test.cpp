#include "dsm/address.hpp"

#include <gtest/gtest.h>

namespace hyp::dsm {
namespace {

TEST(Layout, PageGeometry) {
  Layout l(1 << 20, 4096, 4);
  EXPECT_EQ(l.total_pages(), 256u);
  EXPECT_EQ(l.page_of(0), 0u);
  EXPECT_EQ(l.page_of(4095), 0u);
  EXPECT_EQ(l.page_of(4096), 1u);
  EXPECT_EQ(l.offset_in_page(4097), 1u);
  EXPECT_EQ(l.page_base(3), 3u * 4096u);
}

TEST(Layout, ZonesPartitionTheRegion) {
  Layout l(1 << 20, 4096, 4);
  // 256 pages over 4 nodes -> 64 pages per zone.
  EXPECT_EQ(l.zone_begin(0), 0u);
  EXPECT_EQ(l.zone_end(0), 64u * 4096u);
  EXPECT_EQ(l.zone_begin(3), 192u * 4096u);
  EXPECT_EQ(l.zone_end(3), 1u << 20);
}

TEST(Layout, HomeFollowsZoneOwnership) {
  Layout l(1 << 20, 4096, 4);
  EXPECT_EQ(l.home_of_page(0), 0);
  EXPECT_EQ(l.home_of_page(63), 0);
  EXPECT_EQ(l.home_of_page(64), 1);
  EXPECT_EQ(l.home_of_page(255), 3);
  EXPECT_EQ(l.home_of(64u * 4096u), 1);
}

TEST(Layout, RemainderPagesBelongToLastNode) {
  // 100 pages over 3 nodes: 33 per zone, pages 99.. belong to node 2.
  Layout l(100 * 4096, 4096, 3);
  EXPECT_EQ(l.home_of_page(32), 0);
  EXPECT_EQ(l.home_of_page(33), 1);
  EXPECT_EQ(l.home_of_page(98), 2);
  EXPECT_EQ(l.home_of_page(99), 2);  // remainder tail
  EXPECT_EQ(l.zone_end(2), 100u * 4096u);
}

TEST(Layout, SingleNodeOwnsEverything) {
  Layout l(1 << 20, 4096, 1);
  EXPECT_EQ(l.home_of_page(0), 0);
  EXPECT_EQ(l.home_of_page(255), 0);
  EXPECT_EQ(l.zone_end(0), 1u << 20);
}

TEST(LayoutDeath, RejectsNonPowerOfTwoPages) {
  EXPECT_DEATH(Layout(1 << 20, 3000, 2), "power of two");
}

TEST(LayoutDeath, RejectsPartialPages) {
  EXPECT_DEATH(Layout((1 << 20) + 1, 4096, 2), "whole pages");
}

TEST(LayoutDeath, RejectsTooManyNodes) {
  EXPECT_DEATH(Layout(4096, 4096, 2), "too small");
}

}  // namespace
}  // namespace hyp::dsm
