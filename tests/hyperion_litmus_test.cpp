// JMM litmus patterns on the cluster JVM.
//
// Deterministic analogues of the classic memory-model tests, phrased the
// way the old JMM (JLS ch.17, the model the paper implements) decides them:
// properly synchronized handoffs must be ordered; unsynchronized reads may
// observe stale node caches — and in this deterministic DSM we can assert
// the staleness *exactly*, not just permit it.
#include <gtest/gtest.h>

#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace hyp::hyperion {
namespace {

VmConfig cfg_for(dsm::ProtocolKind kind, int nodes) {
  VmConfig cfg;
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  return cfg;
}

class LitmusTest : public ::testing::TestWithParam<dsm::ProtocolKind> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, LitmusTest,
                         ::testing::Values(dsm::ProtocolKind::kJavaIc,
                                           dsm::ProtocolKind::kJavaPf),
                         [](const auto& info) { return dsm::protocol_name(info.param); });

TEST_P(LitmusTest, MessagePassingSynchronizedIsOrdered) {
  // MP: w(data)=1; w(flag)=1 || r(flag)==1 -> r(data) must be 1, when both
  // halves synchronize on the flag's monitor.
  HyperionVM vm(cfg_for(GetParam(), 2));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto data = main.new_cell<std::int64_t>(0);
      auto flag = main.new_cell<std::int64_t>(0);
      int stale_observed = 0;
      auto reader = main.start_thread("reader", [=, &stale_observed](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        for (;;) {
          std::int64_t f = 0, d = 0;
          env.synchronized(flag.addr, [&] {
            f = mem.get(flag);
            d = mem.get(data);
          });
          if (f == 1) {
            if (d != 1) ++stale_observed;  // forbidden outcome
            return;
          }
        }
      });
      auto writer = main.start_thread("writer", [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        env.synchronized(flag.addr, [&] {
          mem.put(data, std::int64_t{1});
          mem.put(flag, std::int64_t{1});
        });
      });
      main.join(reader);
      main.join(writer);
      EXPECT_EQ(stale_observed, 0);
    });
  });
}

TEST_P(LitmusTest, MessagePassingUnsynchronizedObservesStaleness) {
  // The same pattern WITHOUT synchronization: the reader's node cache holds
  // both values from before the write; in this deterministic simulation the
  // stale (0,0) view is not merely allowed — it is exactly what happens.
  HyperionVM vm(cfg_for(GetParam(), 3));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto data = main.new_cell<std::int64_t>(0);
      auto flag = main.new_cell<std::int64_t>(0);
      std::int64_t f_seen = -1, d_seen = -1;
      auto reader = main.start_thread("reader", [=, &f_seen, &d_seen](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        // Off the home node (round-robin would land us on node 0, where the
        // cells live and reads are never stale).
        env.migrate_to(2);
        // Cache both cells cold...
        (void)mem.get(flag);
        (void)mem.get(data);
        // ...give the writer ample time, then read again with NO acquire.
        env.charge_cycles(50'000'000);
        env.ctx().clock.flush();
        f_seen = mem.get(flag);
        d_seen = mem.get(data);
      });
      auto writer = main.start_thread("writer", [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        env.synchronized(flag.addr, [&] {
          mem.put(data, std::int64_t{1});
          mem.put(flag, std::int64_t{1});
        });
      });
      main.join(reader);
      main.join(writer);
      // Home copies hold 1; the reader's cached view stayed at 0 — the JMM
      // staleness the paper's whole-cache invalidation exists to bound.
      EXPECT_EQ(f_seen, 0);
      EXPECT_EQ(d_seen, 0);
      Mem<P> mem(main.ctx());
      EXPECT_EQ(mem.get(flag), 1);
    });
  });
}

TEST_P(LitmusTest, StoreBufferingForbiddenUnderMonitors) {
  // SB: x=1; r1=y || y=1; r2=x — (r1,r2)=(0,0) forbidden when each half is
  // one synchronized block on a common monitor.
  HyperionVM vm(cfg_for(GetParam(), 3));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto x = main.new_cell<std::int64_t>(0);
      auto y = main.new_cell<std::int64_t>(0);
      auto lock = main.new_cell<std::int64_t>(0);
      std::int64_t r1 = -1, r2 = -1;
      auto t1 = main.start_thread("t1", [=, &r1](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        env.synchronized(lock.addr, [&] {
          mem.put(x, std::int64_t{1});
          r1 = mem.get(y);
        });
      });
      auto t2 = main.start_thread("t2", [=, &r2](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        env.synchronized(lock.addr, [&] {
          mem.put(y, std::int64_t{1});
          r2 = mem.get(x);
        });
      });
      main.join(t1);
      main.join(t2);
      EXPECT_FALSE(r1 == 0 && r2 == 0) << "SB relaxed outcome under mutual exclusion";
    });
  });
}

TEST_P(LitmusTest, CoherenceWithinOneSynchronizedBlock) {
  // Two reads of the same variable inside one critical section must agree
  // (no mid-block invalidation may intervene).
  HyperionVM vm(cfg_for(GetParam(), 2));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto cell = main.new_cell<std::int64_t>(7);
      int disagreements = 0;
      auto reader = main.start_thread("reader", [=, &disagreements](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        for (int i = 0; i < 50; ++i) {
          env.synchronized(cell.addr, [&] {
            const auto first = mem.get(cell);
            const auto second = mem.get(cell);
            if (first != second) ++disagreements;
          });
        }
      });
      auto writer = main.start_thread("writer", [=](JavaEnv& env) {
        Mem<P> mem(env.ctx());
        for (int i = 0; i < 50; ++i) {
          env.synchronized(cell.addr, [&] { mem.put(cell, static_cast<std::int64_t>(i)); });
        }
      });
      main.join(reader);
      main.join(writer);
      EXPECT_EQ(disagreements, 0);
    });
  });
}

}  // namespace
}  // namespace hyp::hyperion
