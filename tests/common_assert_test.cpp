#include "common/assert.hpp"

#include <gtest/gtest.h>

namespace hyp {
namespace {

TEST(Check, PassingCheckIsSilent) {
  HYP_CHECK(1 + 1 == 2);
  HYP_CHECK_MSG(true, "never printed");
  SUCCEED();
}

TEST(CheckDeath, FailingCheckAborts) {
  EXPECT_DEATH(HYP_CHECK(1 == 2), "check failed: 1 == 2");
}

TEST(CheckDeath, FailingCheckMsgIncludesContext) {
  EXPECT_DEATH(HYP_CHECK_MSG(false, "page 7 missing"), "page 7 missing");
}

TEST(CheckDeath, PanicAborts) {
  EXPECT_DEATH(HYP_PANIC("unrecoverable"), "unrecoverable");
}

TEST(Check, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto bump = [&]() {
    ++calls;
    return true;
  };
  HYP_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace hyp
