#include "hyperion/vm.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hyperion/japi.hpp"

namespace hyp::hyperion {
namespace {

VmConfig test_config(dsm::ProtocolKind kind, int nodes) {
  VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  return cfg;
}

class VmProtocolTest : public ::testing::TestWithParam<dsm::ProtocolKind> {};
INSTANTIATE_TEST_SUITE_P(BothProtocols, VmProtocolTest,
                         ::testing::Values(dsm::ProtocolKind::kJavaIc,
                                           dsm::ProtocolKind::kJavaPf),
                         [](const auto& info) { return dsm::protocol_name(info.param); });

TEST_P(VmProtocolTest, RunMainReturnsNonzeroElapsed) {
  HyperionVM vm(test_config(GetParam(), 2));
  const Time t = vm.run_main([](JavaEnv& main) { main.charge_cycles(1000); });
  EXPECT_GT(t, 0u);
  EXPECT_EQ(t, vm.elapsed());
}

TEST_P(VmProtocolTest, RoundRobinPlacement) {
  HyperionVM vm(test_config(GetParam(), 3));
  std::vector<NodeId> nodes;
  vm.run_main([&](JavaEnv& main) {
    std::vector<JThread> ts;
    for (int i = 0; i < 6; ++i) {
      ts.push_back(main.start_thread("t" + std::to_string(i),
                                     [&nodes](JavaEnv& env) { nodes.push_back(env.node()); }));
      EXPECT_EQ(ts.back().node(), i % 3);
    }
    for (auto& t : ts) main.join(t);
  });
  EXPECT_EQ(nodes.size(), 6u);
}

TEST_P(VmProtocolTest, PinnedBalancerOverridesPlacement) {
  HyperionVM vm(test_config(GetParam(), 3));
  vm.set_balancer(std::make_unique<PinnedBalancer>(2));
  vm.run_main([&](JavaEnv& main) {
    auto t = main.start_thread("pinned", [](JavaEnv& env) { EXPECT_EQ(env.node(), 2); });
    EXPECT_EQ(t.node(), 2);
    main.join(t);
  });
}

TEST_P(VmProtocolTest, StartEdgeMakesPreStartWritesVisible) {
  // Writes by the parent before start() must be visible to the child with
  // no explicit synchronization (JMM: start() is a happens-before edge).
  HyperionVM vm(test_config(GetParam(), 2));
  std::int64_t seen = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      Mem<P> mem(main.ctx());
      auto cell = main.new_cell<std::int64_t>(0);
      mem.put(cell, std::int64_t{55});
      auto t = main.start_thread("reader", [=, &seen](JavaEnv& env) {
        Mem<P> m2(env.ctx());
        seen = m2.get(cell);
      });
      main.join(t);
    });
  });
  EXPECT_EQ(seen, 55);
}

TEST_P(VmProtocolTest, JoinEdgeMakesChildWritesVisible) {
  HyperionVM vm(test_config(GetParam(), 2));
  std::int64_t seen = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto cell = main.new_cell<std::int64_t>(0);
      Mem<P> mem(main.ctx());
      // Cache the page on main's node before the child writes it, so join
      // must actually invalidate to pass.
      EXPECT_EQ(mem.get(cell), 0);
      auto t = main.start_thread("writer", [=](JavaEnv& env) {
        Mem<P> m2(env.ctx());
        m2.put(cell, std::int64_t{77});
      });
      main.join(t);
      seen = mem.get(cell);
    });
  });
  EXPECT_EQ(seen, 77);
}

TEST_P(VmProtocolTest, ArraysZeroInitializedWithLength) {
  HyperionVM vm(test_config(GetParam(), 2));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      Mem<P> mem(main.ctx());
      auto arr = main.new_array<std::int32_t>(100);
      EXPECT_EQ(mem.alen(arr), 100);
      for (int i = 0; i < 100; ++i) EXPECT_EQ(mem.aget(arr, i), 0);
      mem.aput(arr, 42, std::int32_t{7});
      EXPECT_EQ(mem.aget(arr, 42), 7);
    });
  });
}

TEST_P(VmProtocolTest, ArrayCopyMovesElements) {
  HyperionVM vm(test_config(GetParam(), 2));
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      Mem<P> mem(main.ctx());
      auto src = main.new_array<std::int64_t>(10);
      auto dst = main.new_array<std::int64_t>(10);
      for (int i = 0; i < 10; ++i) mem.aput(src, i, std::int64_t{i * i});
      japi::arraycopy<P>(main, src, 2, dst, 5, 4);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(mem.aget(dst, 5 + i), (i + 2) * (i + 2));
      EXPECT_EQ(mem.aget(dst, 0), 0);
      EXPECT_EQ(mem.aget(dst, 9), 0);
    });
  });
}

TEST_P(VmProtocolTest, BarrierSynchronizesPhases) {
  // Each thread bumps its slot each round; after the barrier, every thread
  // must observe every other thread's value for that round.
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  HyperionVM vm(test_config(GetParam(), 4));
  int violations = 0;
  dsm::with_policy(GetParam(), [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](JavaEnv& main) {
      auto slots = main.new_array<std::int32_t>(kThreads);
      auto barrier = japi::JBarrier::create(main, kThreads);
      std::vector<JThread> ts;
      for (int w = 0; w < kThreads; ++w) {
        ts.push_back(main.start_thread("p" + std::to_string(w), [=, &violations](JavaEnv& env) {
          Mem<P> mem(env.ctx());
          for (int round = 1; round <= kRounds; ++round) {
            env.synchronized(slots.header, [&] { mem.aput(slots, w, std::int32_t{round}); });
            barrier.template await<P>(env);
            env.synchronized(slots.header, [&] {
              for (int other = 0; other < kThreads; ++other) {
                if (mem.aget(slots, other) < round) ++violations;
              }
            });
            barrier.template await<P>(env);
          }
        }));
      }
      for (auto& t : ts) main.join(t);
    });
  });
  EXPECT_EQ(violations, 0);
}

TEST_P(VmProtocolTest, CurrentTimeMillisTracksVirtualTime) {
  HyperionVM vm(test_config(GetParam(), 1));
  vm.run_main([&](JavaEnv& main) {
    const auto t0 = japi::current_time_millis(main);
    main.charge_cycles(1000);
    main.ctx().clock.flush();
    sim::Engine::current()->sleep_for(25 * kMillisecond);
    EXPECT_GE(japi::current_time_millis(main) - t0, 25);
  });
}

TEST_P(VmProtocolTest, DeterministicAcrossRuns) {
  auto run_once = [&](dsm::ProtocolKind kind) {
    HyperionVM vm(test_config(kind, 4));
    Time elapsed = 0;
    dsm::with_policy(kind, [&](auto policy) {
      using P = decltype(policy);
      elapsed = vm.run_main([&](JavaEnv& main) {
        auto counter = main.new_cell<std::int64_t>(0);
        std::vector<JThread> ts;
        for (int w = 0; w < 4; ++w) {
          ts.push_back(main.start_thread("w" + std::to_string(w), [=](JavaEnv& env) {
            Mem<P> mem(env.ctx());
            for (int i = 0; i < 10; ++i) {
              env.synchronized(counter.addr, [&] { mem.put(counter, mem.get(counter) + 1); });
            }
          }));
        }
        for (auto& t : ts) main.join(t);
      });
    });
    return std::make_pair(elapsed, vm.stats().nonzero());
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

TEST(VmTiming, SameProgramFasterOnTheFasterCluster) {
  // 450 MHz/SCI beats 200 MHz/Myrinet on a compute+sync-bound toy program.
  auto run_on = [&](cluster::ClusterParams params) {
    VmConfig cfg;
    cfg.cluster = params;
    cfg.nodes = 2;
    cfg.protocol = dsm::ProtocolKind::kJavaPf;
    cfg.region_bytes = std::size_t{16} << 20;
    HyperionVM vm(cfg);
    return vm.run_main([](JavaEnv& main) {
      auto cell = main.new_cell<std::int64_t>(0);
      auto t = main.start_thread("w", [=](JavaEnv& env) {
        Mem<dsm::PfPolicy> mem(env.ctx());
        for (int i = 0; i < 100; ++i) {
          env.charge_cycles(10000);
          env.synchronized(cell.addr, [&] { mem.put(cell, mem.get(cell) + 1); });
        }
      });
      main.join(t);
    });
  };
  EXPECT_LT(run_on(cluster::ClusterParams::sci450()),
            run_on(cluster::ClusterParams::myrinet200()));
}

}  // namespace
}  // namespace hyp::hyperion
