#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace hyp {
namespace {

TEST(Stats, FixedCountersAccumulate) {
  Stats s;
  s.add(Counter::kPageFaults);
  s.add(Counter::kPageFaults, 4);
  EXPECT_EQ(s.get(Counter::kPageFaults), 5u);
  EXPECT_EQ(s.get(Counter::kInlineChecks), 0u);
}

TEST(Stats, NamedCountersAccumulate) {
  Stats s;
  s.add_named("custom", 2);
  s.add_named("custom");
  EXPECT_EQ(s.get_named("custom"), 3u);
  EXPECT_EQ(s.get_named("absent"), 0u);
}

TEST(Stats, MergeAddsBothKinds) {
  Stats a, b;
  a.add(Counter::kMessages, 10);
  a.add_named("x", 1);
  b.add(Counter::kMessages, 5);
  b.add(Counter::kMonitorEnters, 2);
  b.add_named("x", 3);
  b.add_named("y", 7);
  a.merge(b);
  EXPECT_EQ(a.get(Counter::kMessages), 15u);
  EXPECT_EQ(a.get(Counter::kMonitorEnters), 2u);
  EXPECT_EQ(a.get_named("x"), 4u);
  EXPECT_EQ(a.get_named("y"), 7u);
}

TEST(Stats, ResetClearsEverything) {
  Stats s;
  s.add(Counter::kInlineChecks, 3);
  s.add_named("z", 1);
  s.reset();
  EXPECT_EQ(s.get(Counter::kInlineChecks), 0u);
  EXPECT_EQ(s.get_named("z"), 0u);
  EXPECT_TRUE(s.nonzero().empty());
}

TEST(Stats, NonzeroSkipsZeroes) {
  Stats s;
  s.add(Counter::kPageFetches, 1);
  auto m = s.nonzero();
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at("page_fetches"), 1u);
}

TEST(Stats, CounterNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(Counter::kCount_); ++i) {
    std::string n = counter_name(static_cast<Counter>(i));
    EXPECT_FALSE(n.empty());
    EXPECT_NE(n, "?");
    EXPECT_TRUE(names.insert(n).second) << "duplicate counter name " << n;
  }
}

TEST(Stats, ToStringListsNonzero) {
  Stats s;
  s.add(Counter::kMonitorExits, 9);
  EXPECT_NE(s.to_string().find("monitor_exits=9"), std::string::npos);
}

}  // namespace
}  // namespace hyp
