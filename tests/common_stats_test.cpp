#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/histogram.hpp"

namespace hyp {
namespace {

TEST(Stats, FixedCountersAccumulate) {
  Stats s;
  s.add(Counter::kPageFaults);
  s.add(Counter::kPageFaults, 4);
  EXPECT_EQ(s.get(Counter::kPageFaults), 5u);
  EXPECT_EQ(s.get(Counter::kInlineChecks), 0u);
}

TEST(Stats, NamedCountersAccumulate) {
  Stats s;
  s.add_named("custom", 2);
  s.add_named("custom");
  EXPECT_EQ(s.get_named("custom"), 3u);
  EXPECT_EQ(s.get_named("absent"), 0u);
}

TEST(Stats, MergeAddsBothKinds) {
  Stats a, b;
  a.add(Counter::kMessages, 10);
  a.add_named("x", 1);
  b.add(Counter::kMessages, 5);
  b.add(Counter::kMonitorEnters, 2);
  b.add_named("x", 3);
  b.add_named("y", 7);
  a.merge(b);
  EXPECT_EQ(a.get(Counter::kMessages), 15u);
  EXPECT_EQ(a.get(Counter::kMonitorEnters), 2u);
  EXPECT_EQ(a.get_named("x"), 4u);
  EXPECT_EQ(a.get_named("y"), 7u);
}

TEST(Stats, ResetClearsEverything) {
  Stats s;
  s.add(Counter::kInlineChecks, 3);
  s.add_named("z", 1);
  s.reset();
  EXPECT_EQ(s.get(Counter::kInlineChecks), 0u);
  EXPECT_EQ(s.get_named("z"), 0u);
  EXPECT_TRUE(s.nonzero().empty());
}

TEST(Stats, NonzeroSkipsZeroes) {
  Stats s;
  s.add(Counter::kPageFetches, 1);
  auto m = s.nonzero();
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at("page_fetches"), 1u);
}

TEST(Stats, CounterNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(Counter::kCount_); ++i) {
    std::string n = counter_name(static_cast<Counter>(i));
    EXPECT_FALSE(n.empty());
    EXPECT_NE(n, "?");
    EXPECT_TRUE(names.insert(n).second) << "duplicate counter name " << n;
  }
}

TEST(Stats, ToStringListsNonzero) {
  Stats s;
  s.add(Counter::kMonitorExits, 9);
  EXPECT_NE(s.to_string().find("monitor_exits=9"), std::string::npos);
}

TEST(Log2HistogramQuantile, EmptyReportsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.value_at_quantile(0.5), 0u);
}

TEST(Log2HistogramQuantile, EdgeQuantilesClampToObservedMinMax) {
  Log2Histogram h;
  h.record(100);
  h.record(7);
  h.record(3000);
  EXPECT_EQ(h.value_at_quantile(0.0), 7u);
  EXPECT_EQ(h.value_at_quantile(-1.0), 7u);
  EXPECT_EQ(h.value_at_quantile(1.0), 3000u);
  EXPECT_EQ(h.value_at_quantile(2.0), 3000u);
}

TEST(Log2HistogramQuantile, SingleValueAnswersEveryQuantile) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.record(42);
  for (double q : {0.01, 0.5, 0.99, 0.999}) {
    EXPECT_EQ(h.value_at_quantile(q), 42u) << "q=" << q;
  }
}

TEST(Log2HistogramQuantile, RankSelectionAcrossBuckets) {
  // 90 fast samples and 10 slow ones: the median must come from the fast
  // bucket, p99 from the slow one — the fat-tail shape the serving SLOs read.
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(1000000);
  EXPECT_EQ(h.value_at_quantile(0.50), 1u);
  EXPECT_EQ(h.value_at_quantile(0.90), 1u);  // rank 90 is the last fast sample
  const std::uint64_t p99 = h.value_at_quantile(0.99);
  EXPECT_GE(p99, Log2Histogram::bucket_lower(Log2Histogram::bucket_of(1000000)));
  EXPECT_LE(p99, 1000000u);
}

TEST(Log2HistogramQuantile, MonotoneInQ) {
  Log2Histogram h;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.record(x % 100000);
  }
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t v = h.value_at_quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    prev = v;
  }
}

// The PR 5 inclusive-upper-boundary contract: bucket 64's upper bound is
// UINT64_MAX itself, so record(UINT64_MAX) interpolates *inside* its bucket.
// The interpolation also must not wrap: double(2^64 - 1 - 2^63) rounds up to
// 2^63, and an unclamped lo + offset would overflow to ~0 and get squashed to
// min() — reporting the smallest sample for a top-bucket quantile.
TEST(Log2HistogramQuantile, InclusiveUpperBoundaryOfBucket64) {
  EXPECT_EQ(Log2Histogram::bucket_of(~std::uint64_t{0}), 64);
  EXPECT_EQ(Log2Histogram::bucket_upper(64), ~std::uint64_t{0});

  Log2Histogram h;
  h.record(~std::uint64_t{0});
  for (double q : {0.001, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(h.value_at_quantile(q), ~std::uint64_t{0}) << "q=" << q;
  }

  Log2Histogram mixed;
  mixed.record(1);
  mixed.record(~std::uint64_t{0});
  EXPECT_EQ(mixed.value_at_quantile(0.5), 1u);
  // Rank 2 lands in bucket 64 at frac=1.0 — the overflow-prone corner.
  EXPECT_EQ(mixed.value_at_quantile(0.75), ~std::uint64_t{0});
  EXPECT_EQ(mixed.value_at_quantile(1.0), ~std::uint64_t{0});
}

}  // namespace
}  // namespace hyp
