// Tests of the seqc (Li/Hudak-style sequential consistency) protocol — the
// DSM-PM2 "multiple protocols on one platform" demonstration. The defining
// behavioural difference from the Java protocols: NO stale reads, ever,
// without any monitor traffic.
#include "dsm/seqc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

#include <string>
#include <tuple>
#include <vector>

namespace hyp::dsm {
namespace {

cluster::ClusterParams test_params(int nodes) {
  auto p = cluster::ClusterParams::myrinet200();
  p.default_nodes = nodes;
  return p;
}

constexpr std::size_t kRegion = std::size_t{4} << 20;

TEST(SeqC, HomeStartsExclusiveEverywhereElseInvalid) {
  cluster::Cluster c(test_params(3));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(1, 8);
  const PageId p = dsm.layout().page_of(a);
  EXPECT_EQ(dsm.mode(1, p), SeqMode::kExclusive);
  EXPECT_EQ(dsm.mode(0, p), SeqMode::kInvalid);
  EXPECT_EQ(dsm.mode(2, p), SeqMode::kInvalid);
}

TEST(SeqC, RemoteReadGetsCurrentValueAndReadMode) {
  cluster::Cluster c(test_params(2));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "writer-then-reader", [&] {
    auto t0 = dsm.make_thread(0);
    auto t1 = dsm.make_thread(1);
    dsm.write<std::int64_t>(*t0, a, 123);  // home write, already exclusive
    EXPECT_EQ((dsm.read<std::int64_t>(*t1, a)), 123);
    const PageId p = dsm.layout().page_of(a);
    EXPECT_EQ(dsm.mode(1, p), SeqMode::kRead);
    // The home was downgraded to a read replica by the foreign read.
    EXPECT_EQ(dsm.mode(0, p), SeqMode::kRead);
  });
  c.run();
}

TEST(SeqC, NoStaleReadsWithoutMonitors) {
  // The key contrast with Java consistency: after a remote write completes,
  // every subsequent read — with no synchronization whatsoever — sees it.
  cluster::Cluster c(test_params(3));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "driver", [&] {
    auto t0 = dsm.make_thread(0);
    auto t1 = dsm.make_thread(1);
    auto t2 = dsm.make_thread(2);
    EXPECT_EQ((dsm.read<std::int64_t>(*t1, a)), 0);  // t1 caches a replica
    dsm.write<std::int64_t>(*t2, a, 55);             // t2 takes exclusive
    EXPECT_EQ((dsm.read<std::int64_t>(*t1, a)), 55);  // t1's replica was invalidated
    EXPECT_EQ((dsm.read<std::int64_t>(*t0, a)), 55);  // home was invalidated too
  });
  c.run();
}

TEST(SeqC, WriteInvalidatesAllReaders) {
  cluster::Cluster c(test_params(4));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "driver", [&] {
    auto t1 = dsm.make_thread(1);
    auto t2 = dsm.make_thread(2);
    auto t3 = dsm.make_thread(3);
    dsm.read<std::int64_t>(*t1, a);
    dsm.read<std::int64_t>(*t2, a);
    dsm.write<std::int64_t>(*t3, a, 9);
    const PageId p = dsm.layout().page_of(a);
    EXPECT_EQ(dsm.mode(1, p), SeqMode::kInvalid);
    EXPECT_EQ(dsm.mode(2, p), SeqMode::kInvalid);
    EXPECT_EQ(dsm.mode(3, p), SeqMode::kExclusive);
  });
  c.run();
  EXPECT_GE(c.total_stats().get(Counter::kInvalidations), 2u);
}

TEST(SeqC, OwnershipMigratesBetweenWriters) {
  cluster::Cluster c(test_params(3));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "driver", [&] {
    auto t1 = dsm.make_thread(1);
    auto t2 = dsm.make_thread(2);
    for (std::int64_t i = 0; i < 10; ++i) {
      dsm.write<std::int64_t>(*t1, a, 2 * i);
      EXPECT_EQ((dsm.read<std::int64_t>(*t2, a)), 2 * i);
      dsm.write<std::int64_t>(*t2, a, 2 * i + 1);
      EXPECT_EQ((dsm.read<std::int64_t>(*t1, a)), 2 * i + 1);
    }
    EXPECT_EQ(dsm.read_master<std::int64_t>(a), 19);
  });
  c.run();
}

TEST(SeqC, HomeReacquiresItsOwnPage) {
  // The home loses its page to a foreign writer and must go through the
  // local directory path to get it back.
  cluster::Cluster c(test_params(2));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "driver", [&] {
    auto t0 = dsm.make_thread(0);
    auto t1 = dsm.make_thread(1);
    dsm.write<std::int64_t>(*t1, a, 77);  // foreign node takes exclusive
    const PageId p = dsm.layout().page_of(a);
    EXPECT_EQ(dsm.mode(0, p), SeqMode::kInvalid);
    EXPECT_EQ((dsm.read<std::int64_t>(*t0, a)), 77);  // local re-acquire (read)
    dsm.write<std::int64_t>(*t0, a, 78);              // local re-acquire (write)
    EXPECT_EQ(dsm.mode(0, p), SeqMode::kExclusive);
    EXPECT_EQ((dsm.read<std::int64_t>(*t1, a)), 78);
  });
  c.run();
}

TEST(SeqC, ConcurrentIncrementsUnderExternalLockAreExact) {
  // seqc provides coherence, not atomicity: serialize increments with a sim
  // mutex and verify no update is lost across ownership migrations.
  cluster::Cluster c(test_params(4));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  sim::SimMutex lock(&c.engine());
  constexpr int kThreads = 4;
  constexpr int kReps = 25;
  for (int w = 0; w < kThreads; ++w) {
    c.spawn_thread(w, "w" + std::to_string(w), [&, w] {
      auto t = dsm.make_thread(w);
      for (int i = 0; i < kReps; ++i) {
        sim::SimLockGuard guard(lock);
        dsm.write<std::int64_t>(*t, a, dsm.read<std::int64_t>(*t, a) + 1);
      }
    });
  }
  c.run();
  EXPECT_EQ(dsm.read_master<std::int64_t>(a), kThreads * kReps);
}

TEST(SeqC, ConcurrentUnsynchronizedWritersConverge) {
  // Many racing writers to the same cell: sequential consistency guarantees
  // a total order, so the final master value must be one of the written
  // values, all modes must be coherent, and the run must terminate.
  cluster::Cluster c(test_params(4));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  for (int w = 0; w < 4; ++w) {
    c.spawn_thread(w, "racer" + std::to_string(w), [&, w] {
      auto t = dsm.make_thread(w);
      for (int i = 0; i < 20; ++i) {
        dsm.write<std::int64_t>(*t, a, w * 100 + i);
        c.engine().sleep_for((w + 1) * kMicrosecond);
      }
    });
  }
  c.run();
  const std::int64_t final_value = dsm.read_master<std::int64_t>(a);
  const std::int64_t w = final_value / 100;
  const std::int64_t i = final_value % 100;
  EXPECT_GE(w, 0);
  EXPECT_LT(w, 4);
  EXPECT_EQ(i, 19);  // everyone's last write is their 19th
}

TEST(SeqC, ReadersShareWithoutTraffic) {
  cluster::Cluster c(test_params(2));
  SeqDsm dsm(&c, kRegion);
  const Gva a = dsm.alloc(0, 8);
  c.spawn_thread(0, "driver", [&] {
    auto t1 = dsm.make_thread(1);
    dsm.read<std::int64_t>(*t1, a);
    const auto fetches = c.node(1).stats().get(Counter::kPageFetches);
    for (int i = 0; i < 100; ++i) dsm.read<std::int64_t>(*t1, a);
    EXPECT_EQ(c.node(1).stats().get(Counter::kPageFetches), fetches);  // all hits
  });
  c.run();
}

TEST(SeqC, DeterministicAcrossRuns) {
  auto run_once = [] {
    cluster::Cluster c(test_params(3));
    SeqDsm dsm(&c, kRegion);
    const Gva a = dsm.alloc(0, 8);
    for (int w = 0; w < 3; ++w) {
      c.spawn_thread(w, "w" + std::to_string(w), [&, w] {
        auto t = dsm.make_thread(w);
        for (int i = 0; i < 10; ++i) dsm.write<std::int64_t>(*t, a, w * 10 + i);
      });
    }
    c.run();
    return std::make_pair(dsm.read_master<std::int64_t>(a),
                          c.total_stats().get(Counter::kMessages));
  };
  EXPECT_EQ(run_once(), run_once());
}


// Property sweep: random interleaved operations under a global lock must
// match a sequential reference exactly — across seeds and node counts.
class SeqcProperty : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};
INSTANTIATE_TEST_SUITE_P(Sweep, SeqcProperty,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1u, 7u, 13u)),
                         [](const auto& info) {
                           return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST_P(SeqcProperty, LockedRandomOpsMatchSequentialReference) {
  const auto [nodes, seed] = GetParam();
  constexpr int kCells = 6;
  constexpr int kOpsPerThread = 30;

  cluster::Cluster c(test_params(nodes));
  SeqDsm dsm(&c, kRegion);
  std::vector<Gva> cells;
  for (int i = 0; i < kCells; ++i) cells.push_back(dsm.alloc(i % nodes, 8));

  sim::SimMutex lock(&c.engine());
  std::vector<std::int64_t> reference(kCells, 0);
  sim::SimMutex ref_guard(&c.engine());  // reference updated in lock order

  for (int w = 0; w < nodes; ++w) {
    c.spawn_thread(w, "w" + std::to_string(w), [&, w, seed_v = seed] {
      auto t = dsm.make_thread(w);
      Rng rng(seed_v * 131 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int a = static_cast<int>(rng.below(kCells));
        const int b = static_cast<int>(rng.below(kCells));
        const auto delta = static_cast<std::int64_t>(rng.range(-9, 9));
        sim::SimLockGuard guard(lock);
        // cells[a] += delta; cells[b] += cells[a] (order-sensitive, so the
        // reference is updated inside the same critical section).
        const auto va = dsm.read<std::int64_t>(*t, cells[static_cast<std::size_t>(a)]) + delta;
        dsm.write<std::int64_t>(*t, cells[static_cast<std::size_t>(a)], va);
        const auto vb = dsm.read<std::int64_t>(*t, cells[static_cast<std::size_t>(b)]) + va;
        dsm.write<std::int64_t>(*t, cells[static_cast<std::size_t>(b)], vb);
        reference[static_cast<std::size_t>(a)] += delta;
        reference[static_cast<std::size_t>(b)] += reference[static_cast<std::size_t>(a)];
      }
    });
  }
  c.run();
  for (int i = 0; i < kCells; ++i) {
    EXPECT_EQ(dsm.read_master<std::int64_t>(cells[static_cast<std::size_t>(i)]),
              reference[static_cast<std::size_t>(i)])
        << "cell " << i;
  }
}

}  // namespace
}  // namespace hyp::dsm

