// End-to-end validation of the five benchmark programs: every app, under
// both protocols and several node counts, must reproduce its sequential
// reference result. These tests exercise the entire stack — engine, network,
// DSM protocol, monitors, barriers — under realistic access patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "apps/asp.hpp"
#include "apps/barnes.hpp"
#include "apps/jacobi.hpp"
#include "apps/pi.hpp"
#include "apps/tsp.hpp"

namespace hyp::apps {
namespace {

using Param = std::tuple<dsm::ProtocolKind, int /*nodes*/>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(dsm::protocol_name(std::get<0>(info.param))) + "_n" +
         std::to_string(std::get<1>(info.param));
}

class AppSweep : public ::testing::TestWithParam<Param> {
 protected:
  VmConfig config() const {
    return make_config("myri200", std::get<0>(GetParam()), std::get<1>(GetParam()),
                       std::size_t{64} << 20);
  }
};

INSTANTIATE_TEST_SUITE_P(ProtocolsAndNodes, AppSweep,
                         ::testing::Combine(::testing::Values(dsm::ProtocolKind::kJavaIc,
                                                              dsm::ProtocolKind::kJavaPf),
                                            ::testing::Values(1, 2, 3, 4)),
                         param_name);

TEST_P(AppSweep, PiMatchesReference) {
  PiParams p;
  p.intervals = 100'000;
  const auto result = pi_parallel(config(), p);
  EXPECT_NEAR(result.value, pi_serial(p), 1e-9);
  EXPECT_NEAR(result.value, 3.14159265358979, 1e-6);
  EXPECT_GT(result.elapsed, 0u);
}

TEST_P(AppSweep, JacobiMatchesReference) {
  JacobiParams p;
  p.n = 48;
  p.steps = 10;
  const auto result = jacobi_parallel(config(), p);
  const double expected = jacobi_serial(p);
  EXPECT_NEAR(result.value, expected, std::abs(expected) * 1e-12 + 1e-12);
}

TEST_P(AppSweep, AspMatchesReference) {
  AspParams p;
  p.n = 48;
  const auto result = asp_parallel(config(), p);
  // Integer shortest paths: the checksum must match exactly.
  EXPECT_EQ(result.value, asp_serial(p));
}

TEST_P(AppSweep, TspFindsTheOptimum) {
  TspParams p;
  p.cities = 9;
  const auto result = tsp_parallel(config(), p);
  EXPECT_EQ(result.value, static_cast<double>(tsp_serial(p)));
}

TEST_P(AppSweep, BarnesMatchesReference) {
  BarnesParams p;
  p.bodies = 96;
  p.steps = 2;
  const auto result = barnes_parallel(config(), p);
  const double expected = barnes_serial(p);
  EXPECT_NEAR(result.value, expected, std::abs(expected) * 1e-9 + 1e-9);
}

// --- protocol event signatures ----------------------------------------------

TEST(AppBehavior, PiBarelyTouchesObjects) {
  // §4.3: Pi "makes very little use of objects" — java_ic performs few
  // checks relative to the interval count.
  PiParams p;
  p.intervals = 50'000;
  const auto r = pi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaIc, 4), p);
  EXPECT_LT(r.stats.get(Counter::kInlineChecks), 1000u);
}

TEST(AppBehavior, AspChecksScaleWithWork) {
  // ASP under java_ic: >= 3 checks per inner iteration (n^3 total).
  AspParams p;
  p.n = 32;
  const auto r = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaIc, 2), p);
  const std::uint64_t inner = static_cast<std::uint64_t>(p.n) * p.n * (p.n - 1);
  EXPECT_GE(r.stats.get(Counter::kInlineChecks), 3 * inner);
  EXPECT_EQ(r.stats.get(Counter::kPageFaults), 0u);
}

TEST(AppBehavior, AspUnderPfFaultsButNeverChecks) {
  AspParams p;
  p.n = 32;
  const auto r = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 2), p);
  EXPECT_EQ(r.stats.get(Counter::kInlineChecks), 0u);
  EXPECT_GT(r.stats.get(Counter::kPageFaults), 0u);
  EXPECT_GT(r.stats.get(Counter::kMprotectCalls), 0u);
}

TEST(AppBehavior, JacobiCommunicatesBoundaryRowsOnly) {
  // Per step each worker refetches a bounded set of pages (neighbour rows +
  // runtime metadata), far less than the whole mesh.
  JacobiParams p;
  p.n = 64;
  p.steps = 8;
  const auto r = jacobi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), p);
  const std::uint64_t mesh_pages = 2ull * p.n * (static_cast<std::uint64_t>(p.n) * 8 / 4096 + 1);
  EXPECT_LT(r.stats.get(Counter::kPageFetches), mesh_pages * p.steps);
  EXPECT_GT(r.stats.get(Counter::kPageFetches), 0u);
}

TEST(AppBehavior, SingleNodeRunsProduceNoNetworkTraffic) {
  JacobiParams p;
  p.n = 32;
  p.steps = 4;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    const auto r = jacobi_parallel(make_config("myri200", kind, 1), p);
    EXPECT_EQ(r.stats.get(Counter::kMessages), 0u) << dsm::protocol_name(kind);
    EXPECT_EQ(r.stats.get(Counter::kPageFetches), 0u) << dsm::protocol_name(kind);
  }
}

TEST(AppBehavior, TspWorkQueueIsExhaustedExactlyOnce) {
  TspParams p;
  p.cities = 8;
  const auto r = tsp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 3), p);
  // Every worker pops until empty: monitor enters >= job count.
  EXPECT_GT(r.stats.get(Counter::kMonitorEnters), 0u);
  EXPECT_EQ(r.value, static_cast<double>(tsp_serial(p)));
}

TEST(AppBehavior, DeterministicRunsBitwiseEqual) {
  AspParams p;
  p.n = 32;
  const auto cfg = make_config("myri200", dsm::ProtocolKind::kJavaPf, 3);
  const auto a = asp_parallel(cfg, p);
  const auto b = asp_parallel(cfg, p);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.stats.nonzero(), b.stats.nonzero());
}

// --- the paper's headline shape, in miniature -------------------------------

TEST(AppShape, PfBeatsIcOnObjectIntensiveApps) {
  // Figure 5's claim at one experiment point: java_pf outruns java_ic on
  // ASP. The problem must be large enough that per-access check savings
  // outweigh the per-miss fault surcharge — exactly the paper's trade-off
  // ("the ratio between the number of local accesses to the number of
  // remote accesses", §3.3); tiny meshes flip the winner.
  AspParams p;
  p.n = 160;
  const auto ic = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaIc, 4), p);
  const auto pf = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), p);
  EXPECT_EQ(ic.value, pf.value);      // same answer...
  EXPECT_LT(pf.elapsed, ic.elapsed);  // ...faster without the checks
  const double improvement = 1.0 - to_seconds(pf.elapsed) / to_seconds(ic.elapsed);
  EXPECT_GT(improvement, 0.30);  // headed toward the paper's 64%
}

TEST(AppShape, CommunicationBoundSizesFavorIc) {
  // The inverse experiment: a mesh so small that every iteration is fault
  // overhead makes java_ic competitive or better — the protocols embody a
  // genuine trade-off, not a dominance.
  AspParams p;
  p.n = 48;
  const auto ic = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaIc, 4), p);
  const auto pf = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), p);
  EXPECT_EQ(ic.value, pf.value);
  EXPECT_LT(to_seconds(ic.elapsed), to_seconds(pf.elapsed) * 1.05);
}

TEST(AppShape, ProtocolsTieOnPi) {
  // Figure 1: "essentially identically" — within 3%.
  PiParams p;
  p.intervals = 1'000'000;
  const auto ic = pi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaIc, 4), p);
  const auto pf = pi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), p);
  const double ratio = to_seconds(ic.elapsed) / to_seconds(pf.elapsed);
  EXPECT_NEAR(ratio, 1.0, 0.03);
}

TEST(AppShape, MoreNodesRunFaster) {
  // Speedup sanity on a compute-heavy configuration.
  JacobiParams p;
  p.n = 96;
  p.steps = 6;
  const auto n1 = jacobi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 1), p);
  const auto n4 = jacobi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), p);
  EXPECT_LT(n4.elapsed, n1.elapsed);
}

}  // namespace
}  // namespace hyp::apps
