// Load balancer policies (Table 1's pluggable subsystem).
#include <gtest/gtest.h>

#include "hyperion/japi.hpp"
#include "hyperion/load_balancer.hpp"
#include "hyperion/vm.hpp"

namespace hyp::hyperion {
namespace {

TEST(Balancers, RoundRobinCycles) {
  RoundRobinBalancer rr;
  std::vector<cluster::NodeId> got;
  for (int i = 0; i < 7; ++i) got.push_back(rr.place(i, 3));
  EXPECT_EQ(got, (std::vector<cluster::NodeId>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(Balancers, LeastLoadedEvensOut) {
  LeastLoadedBalancer ll;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9; ++i) ++counts[static_cast<std::size_t>(ll.place(i, 3))];
  EXPECT_EQ(counts, (std::vector<int>{3, 3, 3}));
}

TEST(Balancers, LeastLoadedBreaksTiesLow) {
  LeastLoadedBalancer ll;
  EXPECT_EQ(ll.place(0, 4), 0);
  EXPECT_EQ(ll.place(1, 4), 1);
  EXPECT_EQ(ll.place(2, 4), 2);
  EXPECT_EQ(ll.place(3, 4), 3);
  EXPECT_EQ(ll.place(4, 4), 0);
}

TEST(Balancers, NamesExposed) {
  EXPECT_STREQ(RoundRobinBalancer{}.name(), "round-robin");
  EXPECT_STREQ(LeastLoadedBalancer{}.name(), "least-loaded");
  EXPECT_STREQ(PinnedBalancer{0}.name(), "pinned");
}

TEST(Balancers, VmUsesInstalledPolicy) {
  VmConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = dsm::ProtocolKind::kJavaPf;
  cfg.region_bytes = std::size_t{16} << 20;
  HyperionVM vm(cfg);
  vm.set_balancer(std::make_unique<LeastLoadedBalancer>());
  std::vector<NodeId> nodes;
  vm.run_main([&](JavaEnv& main) {
    std::vector<JThread> ts;
    for (int i = 0; i < 8; ++i) {
      ts.push_back(main.start_thread("t", [](JavaEnv&) {}));
      nodes.push_back(ts.back().node());
    }
    for (auto& t : ts) main.join(t);
  });
  int per_node[4] = {};
  for (NodeId n : nodes) ++per_node[n];
  for (int c : per_node) EXPECT_EQ(c, 2);
}

TEST(Japi, ThreadSleepAdvancesVirtualTime) {
  VmConfig cfg;
  cfg.nodes = 1;
  cfg.protocol = dsm::ProtocolKind::kJavaPf;
  cfg.region_bytes = std::size_t{16} << 20;
  HyperionVM vm(cfg);
  vm.run_main([&](JavaEnv& main) {
    const Time before = main.now();
    japi::thread_sleep(main, 125);
    EXPECT_GE(main.now() - before, 125 * kMillisecond);
  });
}

TEST(Japi, ThreadSleepIncludesPendingCompute) {
  VmConfig cfg;
  cfg.nodes = 1;
  cfg.protocol = dsm::ProtocolKind::kJavaPf;
  cfg.region_bytes = std::size_t{16} << 20;
  HyperionVM vm(cfg);
  vm.run_main([&](JavaEnv& main) {
    main.charge_cycles(200'000'000);  // 1s at 200 MHz, pending
    const Time before = main.now();
    japi::thread_sleep(main, 1);  // must flush first
    EXPECT_GE(main.now() - before, kSecond);
  });
}

}  // namespace
}  // namespace hyp::hyperion
