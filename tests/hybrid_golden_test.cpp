// Hybrid-protocol determinism golden: the adaptive protocol is still a pure
// function of its inputs.
//
// The hybrid protocol adds two online decisions on top of java_ic/java_pf —
// the per-page detection-mode switch and heat-driven home migration — and
// both are driven by integer virtual-time arithmetic only, so the same seed
// must reproduce the same decisions bit for bit. This test pins Jacobi + ASP
// under hybrid x {1,2,4} nodes exactly as determinism_golden_test.cpp does
// for the paper protocols: result bits, virtual time, engine tallies and
// every nonzero counter (including dsm_mode_switches / dsm_home_migrations)
// must match the recorded goldens EXACTLY.
//
// Re-recording (only after an intentional semantic change to the hybrid
// policy — say why in the commit message):
//   HYP_UPDATE_GOLDENS=1 ./determinism_tests --gtest_filter='HybridGolden*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/asp.hpp"
#include "apps/jacobi.hpp"

namespace hyp::apps {
namespace {

#ifndef HYP_HYBRID_GOLDEN_FILE
#error "HYP_HYBRID_GOLDEN_FILE must point at the recorded goldens"
#endif

struct ConfigPoint {
  const char* app;
  int nodes;
};

std::vector<ConfigPoint> config_points() {
  std::vector<ConfigPoint> pts;
  for (const char* app : {"jacobi", "asp"}) {
    for (int nodes : {1, 2, 4}) pts.push_back({app, nodes});
  }
  return pts;
}

RunResult run_point(const ConfigPoint& pt) {
  const auto cfg = make_config("myri200", dsm::ProtocolKind::kHybrid, pt.nodes,
                               std::size_t{64} << 20);
  if (std::strcmp(pt.app, "jacobi") == 0) {
    JacobiParams p;
    p.n = 40;
    p.steps = 6;
    return jacobi_parallel(cfg, p);
  }
  AspParams p;
  p.n = 40;
  return asp_parallel(cfg, p);
}

std::string golden_line(const ConfigPoint& pt, const RunResult& r) {
  std::uint64_t value_bits = 0;
  static_assert(sizeof(value_bits) == sizeof(r.value));
  std::memcpy(&value_bits, &r.value, sizeof(value_bits));
  std::ostringstream os;
  os << pt.app << " hybrid n" << pt.nodes << " value_bits=" << value_bits
     << " elapsed=" << r.elapsed << " events=" << r.events_processed
     << " switches=" << r.context_switches;
  for (const auto& [name, v] : r.stats.nonzero()) os << ' ' << name << '=' << v;
  return os.str();
}

std::string point_key(const ConfigPoint& pt) {
  return std::string(pt.app) + " hybrid n" + std::to_string(pt.nodes);
}

TEST(HybridGolden, JacobiAndAspBitIdentical) {
  std::vector<std::string> lines;
  std::map<std::string, std::string> actual;
  for (const auto& pt : config_points()) {
    const RunResult r = run_point(pt);
    const std::string line = golden_line(pt, r);
    lines.push_back(line);
    actual[point_key(pt)] = line;
  }

  if (std::getenv("HYP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(HYP_HYBRID_GOLDEN_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << HYP_HYBRID_GOLDEN_FILE;
    out << "# Hybrid determinism goldens: jacobi(n=40,steps=6) + asp(n=40) on\n"
           "# myri200, hybrid protocol x {1,2,4} nodes. Regenerate with\n"
           "# HYP_UPDATE_GOLDENS=1 ./determinism_tests -- and justify the\n"
           "# policy change in the commit message.\n";
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "goldens re-recorded at " << HYP_HYBRID_GOLDEN_FILE;
  }

  std::ifstream in(HYP_HYBRID_GOLDEN_FILE);
  ASSERT_TRUE(in.good()) << "missing goldens; record with HYP_UPDATE_GOLDENS=1";
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string a, b, c;
    is >> a >> b >> c;
    expected[a + ' ' + b + ' ' + c] = line;
  }
  ASSERT_EQ(expected.size(), actual.size()) << "golden file is stale";
  for (const auto& [key, want] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "no run for golden point " << key;
    EXPECT_EQ(it->second, want)
        << "hybrid simulation drifted at " << key
        << "\n  expected: " << want << "\n  actual:   " << it->second;
  }
}

// The adaptive decisions must also be reproducible within one process run —
// guards against host-address-dependent state (e.g. pointer-keyed ordering)
// leaking into the mode-switch or migration paths.
TEST(HybridGolden, BackToBackRunsIdentical) {
  const ConfigPoint pt{"asp", 4};
  const RunResult a = run_point(pt);
  const RunResult b = run_point(pt);
  EXPECT_EQ(golden_line(pt, a), golden_line(pt, b));
}

}  // namespace
}  // namespace hyp::apps
