// Regression tests for two native-backend accounting/robustness bugs:
//
// 1. segv_handler used to react to a fault OUTSIDE every DSM arena by
//    permanently uninstalling itself (sigaction back to the previous
//    disposition) without ever invoking the previous handler. One foreign
//    SIGSEGV — e.g. from a host application's own protected region — killed
//    remote-object detection for the rest of the run: every later java_pf
//    access fault went to the foreign handler (or the default action)
//    instead of fetch_page. The fix chains: the foreign signal is forwarded
//    to the previously installed handler while our handler stays installed.
//
// 2. protect_non_home_pages counted kMprotectCalls once per mprotect(2)
//    RANGE (always 2 per node) instead of once per page covered, skewing
//    the §3.3 protection-cost accounting that fetch_page/invalidate_cache
//    maintain per page.
#include <setjmp.h>
#include <signal.h>
#include <sys/mman.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "native/native_vm.hpp"

namespace hyp::native {
namespace {

// ---- foreign-fault plumbing -------------------------------------------------
// The "host application" handler that was installed before the DSM: counts
// hits and longjmps out so the faulting access does not retry forever.
std::atomic<int> g_foreign_hits{0};
sigjmp_buf g_foreign_jump;

void counting_handler(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
  g_foreign_hits.fetch_add(1, std::memory_order_relaxed);
  siglongjmp(g_foreign_jump, 1);
}

struct ScopedUserSegvHandler {
  ScopedUserSegvHandler() {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &counting_handler;
    sa.sa_flags = SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    installed_ = sigaction(SIGSEGV, &sa, &saved_) == 0;
  }
  ~ScopedUserSegvHandler() {
    if (installed_) sigaction(SIGSEGV, &saved_, nullptr);
  }
  bool installed_ = false;
  struct sigaction saved_;
};

NativeVm::Config pf_cfg(int nodes) {
  NativeVm::Config c;
  c.protocol = Protocol::kJavaPf;
  c.nodes = nodes;
  c.region_bytes = std::size_t{16} << 20;
  return c;
}

TEST(NativeSegvChain, ForeignFaultChainsAndDetectionStaysAlive) {
  g_foreign_hits.store(0);
  // A host application installed its own SIGSEGV handler BEFORE the DSM came
  // up; NativeDsm's installation saves it as the previous action.
  ScopedUserSegvHandler user_handler;
  ASSERT_TRUE(user_handler.installed_);

  // A page the DSM knows nothing about — faulting on it is "foreign".
  void* forbidden = mmap(nullptr, 4096, PROT_NONE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(forbidden, MAP_FAILED);

  {
    NativeVm vm(pf_cfg(2));
    vm.run_main([&](NativeEnv& env) {
      const Gva a = env.new_cell<std::int64_t>(4242);  // homed on node 0

      // Foreign fault mid-run: must be forwarded to the user handler, once.
      if (sigsetjmp(g_foreign_jump, 1) == 0) {
        volatile const char* p = static_cast<const char*>(forbidden);
        [[maybe_unused]] volatile char c = *p;
        FAIL() << "access to PROT_NONE page did not fault";
      }
      EXPECT_EQ(g_foreign_hits.load(), 1);

      // ...and remote-object detection must still work afterwards: the DSM
      // handler has to still be installed, not uninstalled by the foreign
      // fault. (Before the fix this deadlocked/crashed: the remote access
      // below re-raised into the user handler instead of fetch_page.)
      std::int64_t seen = 0;
      vm.start_thread([a, &seen](NativeEnv& remote) {
        if (remote.node() != 0) seen = remote.get<std::int64_t>(a);
      });
      vm.start_thread([a, &seen](NativeEnv& remote) {
        if (remote.node() != 0) seen = remote.get<std::int64_t>(a);
      });
      vm.join_all(env);
      EXPECT_EQ(seen, 4242);
    });
    // The post-foreign-fault remote read went through SIGSEGV detection.
    EXPECT_GE(vm.dsm().counter(Counter::kPageFaults), 1u);
    EXPECT_GE(vm.dsm().counter(Counter::kPageFetches), 1u);
    // The foreign fault hit the user handler exactly once — not zero (the
    // old behavior silently swallowed it on first occurrence) and not many.
    EXPECT_EQ(g_foreign_hits.load(), 1);
  }
}

TEST(NativeSegvChain, SecondForeignFaultStillChains) {
  g_foreign_hits.store(0);
  ScopedUserSegvHandler user_handler;
  ASSERT_TRUE(user_handler.installed_);

  void* forbidden = mmap(nullptr, 4096, PROT_NONE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(forbidden, MAP_FAILED);

  {
    NativeVm vm(pf_cfg(2));
    vm.run_main([&](NativeEnv& env) {
      const Gva a = env.new_cell<std::int64_t>(7);
      for (int round = 0; round < 2; ++round) {
        if (sigsetjmp(g_foreign_jump, 1) == 0) {
          volatile const char* p = static_cast<const char*>(forbidden);
          [[maybe_unused]] volatile char c = *p;
          FAIL() << "access to PROT_NONE page did not fault";
        }
      }
      EXPECT_EQ(g_foreign_hits.load(), 2);
      // Detection still alive after two foreign signals.
      std::int64_t seen = 0;
      vm.start_thread([a, &seen](NativeEnv& remote) {
        if (remote.node() != 0) seen = remote.get<std::int64_t>(a);
      });
      vm.start_thread([a, &seen](NativeEnv& remote) {
        if (remote.node() != 0) seen = remote.get<std::int64_t>(a);
      });
      vm.join_all(env);
      EXPECT_EQ(seen, 7);
    });
    EXPECT_GE(vm.dsm().counter(Counter::kPageFaults), 1u);
  }
}

// ---- per-page mprotect accounting ------------------------------------------

TEST(NativeMprotectAccounting, InitialProtectionCountsPerPageCovered) {
  // 2 nodes x 1 MiB region / 4 KiB pages: 256 pages total, 128 per zone.
  // Each node protects the other node's 128 pages at startup, so the §3.3
  // protection counter must start at (nodes-1) * total_pages = 256 — not 2
  // range-mprotect calls per node.
  NativeDsm dsm(2, std::size_t{1} << 20, Protocol::kJavaPf);
  const auto total_pages = static_cast<std::uint64_t>(dsm.layout().total_pages());
  EXPECT_EQ(dsm.counter(Counter::kMprotectCalls), (2 - 1) * total_pages);
}

TEST(NativeMprotectAccounting, FourNodeInitialProtectionMatchesGeometry) {
  NativeDsm dsm(4, std::size_t{1} << 20, Protocol::kJavaPf);
  const auto total_pages = static_cast<std::uint64_t>(dsm.layout().total_pages());
  // Every node protects all pages outside its own zone.
  EXPECT_EQ(dsm.counter(Counter::kMprotectCalls), (4 - 1) * total_pages);
}

}  // namespace
}  // namespace hyp::native
