// Ordering and shutdown semantics the reliable transport depends on:
//
//  * Channel close()/in-flight interplay — a retransmitted packet "on the
//    wire" when a dispatcher shuts down must still drain, and parked
//    consumers must observe closed-and-empty exactly once; and
//  * FifoServer service order when requests are injected with out-of-order
//    push_at ready times — the server must serialize in *arrival* order
//    (ready time, then push order), never in issue order, with exact
//    busy-time accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/sync.hpp"

namespace hyp::sim {
namespace {

TEST(ChannelClose, ParkedConsumerDrainsInFlightThenEnds) {
  // Consumer parks first; producer launches an in-flight item and closes
  // immediately. The consumer must wake for the item (at its ready time,
  // not at close time) and only then see closed-and-empty.
  Engine eng;
  Channel<int> ch(&eng);
  std::vector<std::pair<int, Time>> got;
  bool saw_end = false;
  Time end_at = 0;
  eng.spawn("consumer", [&] {
    while (auto item = ch.pop()) got.push_back({*item, eng.now()});
    saw_end = true;
    end_at = eng.now();
  });
  eng.spawn("producer", [&] {
    eng.sleep_for(5 * kNanosecond);  // let the consumer park
    ch.push_at(42, 90 * kNanosecond);
    ch.close();
  });
  EXPECT_TRUE(eng.run().empty());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 42);
  EXPECT_EQ(got[0].second, 90 * kNanosecond);
  EXPECT_TRUE(saw_end);
  EXPECT_EQ(end_at, 90 * kNanosecond);
}

TEST(ChannelClose, MultipleParkedConsumersAllObserveEnd) {
  Engine eng;
  Channel<int> ch(&eng);
  int ended = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("consumer" + std::to_string(i), [&] {
      if (!ch.pop().has_value()) ++ended;
    });
  }
  eng.spawn("closer", [&] {
    eng.sleep_for(kNanosecond);
    ch.close();
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(ended, 3);
}

TEST(ChannelClose, ItemAndEndSplitAcrossConsumers) {
  // One queued item, two parked consumers, then close: exactly one consumer
  // receives the item, the other observes end-of-channel; nobody hangs.
  Engine eng;
  Channel<int> ch(&eng);
  int received = 0, ended = 0;
  for (int i = 0; i < 2; ++i) {
    eng.spawn("consumer" + std::to_string(i), [&] {
      while (auto item = ch.pop()) received += *item;
      ++ended;
    });
  }
  eng.spawn("producer", [&] {
    eng.sleep_for(kNanosecond);
    ch.push(7);
    ch.close();
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(received, 7);
  EXPECT_EQ(ended, 2);
}

TEST(ChannelClose, InFlightNotVisibleToTryPopUntilReady) {
  Engine eng;
  Channel<int> ch(&eng);
  eng.spawn("t", [&] {
    ch.push_at(1, 50 * kNanosecond);
    ch.close();
    EXPECT_EQ(ch.ready_count(), 0u);       // still on the wire
    EXPECT_FALSE(ch.try_pop().has_value());  // try_pop never blocks, sees none
    eng.sleep_for(60 * kNanosecond);
    EXPECT_EQ(ch.ready_count(), 1u);  // delivered despite close()
    auto v = ch.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
  });
  EXPECT_TRUE(eng.run().empty());
}

TEST(ChannelClose, PushAfterCloseStillDrains) {
  // close() stops nothing at the sender side (a crashing dispatcher may race
  // late retransmits); late pushes drain before consumers see the end.
  Engine eng;
  Channel<int> ch(&eng);
  std::vector<int> got;
  eng.spawn("producer", [&] {
    ch.close();
    ch.push(3);
  });
  eng.spawn("consumer", [&] {
    while (auto item = ch.pop()) got.push_back(*item);
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(got, (std::vector<int>{3}));
}

TEST(FifoServerOrder, OutOfOrderPushAtServesInArrivalOrder) {
  // Requests are *issued* in the order 30ns, 10ns, 20ns but become ready
  // out of issue order. The dispatcher must serve them in ready-time order
  // and back-to-back once the server saturates.
  Engine eng;
  Channel<int> ch(&eng);
  FifoServer server(&eng);
  constexpr TimeDelta kService = 25 * kNanosecond;
  std::vector<std::pair<int, Time>> starts;  // (request id, service start)
  eng.spawn("producer", [&] {
    ch.push_at(3, 30 * kNanosecond);
    ch.push_at(1, 10 * kNanosecond);
    ch.push_at(2, 20 * kNanosecond);
    ch.close();
  });
  eng.spawn("dispatcher", [&] {
    while (auto req = ch.pop()) starts.push_back({*req, server.serve(kService)});
  });
  EXPECT_TRUE(eng.run().empty());
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0].first, 1);
  EXPECT_EQ(starts[1].first, 2);
  EXPECT_EQ(starts[2].first, 3);
  // First starts on arrival; the rest queue behind the 25ns service slots.
  EXPECT_EQ(starts[0].second, 10 * kNanosecond);
  EXPECT_EQ(starts[1].second, 35 * kNanosecond);
  EXPECT_EQ(starts[2].second, 60 * kNanosecond);
  EXPECT_EQ(server.jobs_served(), 3u);
  EXPECT_EQ(server.busy_time(), 3 * kService);
  EXPECT_EQ(server.free_at(), 85 * kNanosecond);
}

TEST(FifoServerOrder, GapBetweenArrivalsIdlesTheServer) {
  // When the queue drains, the next service starts at its own arrival time,
  // not at free_at of the previous burst.
  Engine eng;
  Channel<int> ch(&eng);
  FifoServer server(&eng);
  std::vector<Time> starts;
  eng.spawn("producer", [&] {
    ch.push_at(1, 10 * kNanosecond);
    ch.push_at(2, 500 * kNanosecond);  // long after the first completes
    ch.close();
  });
  eng.spawn("dispatcher", [&] {
    while (auto req = ch.pop()) starts.push_back(server.serve(20 * kNanosecond));
  });
  EXPECT_TRUE(eng.run().empty());
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 10 * kNanosecond);
  EXPECT_EQ(starts[1], 500 * kNanosecond);
  EXPECT_EQ(server.busy_time(), 40 * kNanosecond);
}

TEST(FifoServerOrder, ReserveAccountsWithoutBlocking) {
  // reserve() from a single fiber must never advance virtual time yet must
  // serialize occupancy exactly like serve().
  Engine eng;
  FifoServer server(&eng);
  eng.spawn("t", [&] {
    const Time t0 = eng.now();
    EXPECT_EQ(server.reserve(30 * kNanosecond), t0);
    EXPECT_EQ(server.reserve(10 * kNanosecond), t0 + 30 * kNanosecond);
    EXPECT_EQ(eng.now(), t0);  // no time passed
    EXPECT_EQ(server.free_at(), t0 + 40 * kNanosecond);
    // A serve() issued now queues behind both reservations.
    EXPECT_EQ(server.serve(5 * kNanosecond), t0 + 40 * kNanosecond);
    EXPECT_EQ(eng.now(), t0 + 45 * kNanosecond);
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(server.jobs_served(), 3u);
  EXPECT_EQ(server.busy_time(), 45 * kNanosecond);
}

}  // namespace
}  // namespace hyp::sim
