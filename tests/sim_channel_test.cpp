#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hyp::sim {
namespace {

TEST(Channel, ImmediatePushPop) {
  Engine eng;
  Channel<int> ch(&eng);
  std::vector<int> got;
  eng.spawn("producer", [&] {
    ch.push(1);
    ch.push(2);
  });
  eng.spawn("consumer", [&] {
    got.push_back(*ch.pop());
    got.push_back(*ch.pop());
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, TimedDeliveryBlocksUntilReady) {
  Engine eng;
  Channel<std::string> ch(&eng);
  Time arrival = 0;
  eng.spawn("producer", [&] { ch.push_at("page", 42 * kMicrosecond); });
  eng.spawn("consumer", [&] {
    auto item = ch.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, "page");
    arrival = eng.now();
  });
  eng.run();
  EXPECT_EQ(arrival, 42 * kMicrosecond);
}

TEST(Channel, DeliveryOrderFollowsReadyTime) {
  Engine eng;
  Channel<int> ch(&eng);
  std::vector<int> got;
  eng.spawn("producer", [&] {
    ch.push_at(2, 20 * kNanosecond);
    ch.push_at(1, 10 * kNanosecond);
  });
  eng.spawn_daemon("consumer", [&] {
    while (auto item = ch.pop()) got.push_back(*item);
  });
  eng.spawn("closer", [&] {
    eng.sleep_for(kMicrosecond);
    ch.close();
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, CloseDrainsInFlightItems) {
  // A message already "on the wire" at close() must still be delivered.
  Engine eng;
  Channel<int> ch(&eng);
  std::vector<int> got;
  eng.spawn("producer", [&] {
    ch.push_at(7, 30 * kNanosecond);
    ch.close();
  });
  eng.spawn("consumer", [&] {
    while (auto item = ch.pop()) got.push_back(*item);
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(got, (std::vector<int>{7}));
}

TEST(Channel, PopOnClosedEmptyReturnsNullopt) {
  Engine eng;
  Channel<int> ch(&eng);
  bool saw_end = false;
  eng.spawn("consumer", [&] {
    ch.close();
    saw_end = !ch.pop().has_value();
  });
  eng.run();
  EXPECT_TRUE(saw_end);
}

TEST(Channel, TryPopNeverBlocks) {
  Engine eng;
  Channel<int> ch(&eng);
  eng.spawn("t", [&] {
    EXPECT_FALSE(ch.try_pop().has_value());
    ch.push(9);
    auto v = ch.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
  });
  eng.run();
}

TEST(Channel, MoveOnlyPayloads) {
  Engine eng;
  Channel<std::unique_ptr<int>> ch(&eng);
  int result = 0;
  eng.spawn("producer", [&] { ch.push_at(std::make_unique<int>(5), 10 * kNanosecond); });
  eng.spawn("consumer", [&] {
    auto item = ch.pop();
    ASSERT_TRUE(item.has_value());
    result = **item;
  });
  eng.run();
  EXPECT_EQ(result, 5);
}

TEST(Channel, ManyProducersOneConsumerFifoPerReadyTime) {
  Engine eng;
  Channel<int> ch(&eng);
  std::vector<int> got;
  for (int p = 0; p < 4; ++p) {
    eng.spawn("p" + std::to_string(p), [&ch, p] { ch.push_at(p, 5 * kNanosecond); });
  }
  eng.spawn("consumer", [&] {
    for (int i = 0; i < 4; ++i) got.push_back(*ch.pop());
  });
  eng.run();
  // Same ready time -> delivery follows push order, which follows spawn order.
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace hyp::sim
