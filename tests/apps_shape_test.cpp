// Shape and statistics-signature tests for the five benchmark programs:
// the *mechanisms* behind the paper's discussion must show in the counters,
// not just in the timings.
#include <gtest/gtest.h>

#include "apps/asp.hpp"
#include "apps/barnes.hpp"
#include "apps/jacobi.hpp"
#include "apps/pi.hpp"
#include "apps/tsp.hpp"

namespace hyp::apps {
namespace {

TEST(AppShapeStats, BarnesFaultsGrowWithNodeCount) {
  // §4.3: "the number of page faults being handled by java_pf (as well as
  // the number of mprotect calls performed) grows significantly" as nodes
  // are added.
  BarnesParams p;
  p.bodies = 512;
  p.steps = 2;
  const auto at2 = barnes_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 2), p);
  const auto at8 = barnes_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 8), p);
  EXPECT_GT(at8.stats.get(Counter::kPageFaults), 2 * at2.stats.get(Counter::kPageFaults));
  EXPECT_GT(at8.stats.get(Counter::kMprotectCalls), 2 * at2.stats.get(Counter::kMprotectCalls));
}

TEST(AppShapeStats, AspChecksAreNodeCountInvariant) {
  // Total in-line checks track total accesses — independent of node count
  // (the work is the same; only its placement changes). Barrier traffic
  // contributes a small node-dependent tail.
  AspParams p;
  p.n = 48;
  const auto at1 = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaIc, 1), p);
  const auto at4 = asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaIc, 4), p);
  const double ratio = static_cast<double>(at4.stats.get(Counter::kInlineChecks)) /
                       static_cast<double>(at1.stats.get(Counter::kInlineChecks));
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(AppShapeStats, TspRefetchesCentralStructures) {
  // §4.1: the central queue and bound "must be fetched by threads executing
  // on other nodes" — every pop's monitor entry invalidates the node cache,
  // so fetch counts far exceed the page count of the central data.
  TspParams p;
  p.cities = 8;
  const auto r = tsp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), p);
  // The central data fits in a handful of pages, yet it is fetched over and
  // over (once per post-invalidation touch).
  EXPECT_GT(r.stats.get(Counter::kPageFetches), 100u);
  EXPECT_GT(r.stats.get(Counter::kInvalidations), 100u);
}

TEST(AppShapeStats, JacobiUpdateTrafficMatchesBoundaryExchange) {
  // Each worker ships only its boundary modifications; diff words should be
  // far below total cell updates.
  JacobiParams p;
  p.n = 64;
  p.steps = 6;
  const auto r = jacobi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), p);
  const std::uint64_t total_cell_writes =
      static_cast<std::uint64_t>(p.n - 2) * (p.n - 2) * p.steps;
  EXPECT_LT(r.stats.get(Counter::kDiffWords), total_cell_writes / 2);
  EXPECT_GT(r.stats.get(Counter::kUpdatesSent), 0u);
}

TEST(AppShapeStats, FasterClusterFinishesSooner) {
  // Same program, both presets: sci450 must beat myri200 in absolute time
  // for every app (the paper's figures show disjoint curve families).
  PiParams pi;
  pi.intervals = 100'000;
  EXPECT_LT(pi_parallel(make_config("sci450", dsm::ProtocolKind::kJavaPf, 4), pi).elapsed,
            pi_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), pi).elapsed);
  AspParams asp;
  asp.n = 48;
  EXPECT_LT(asp_parallel(make_config("sci450", dsm::ProtocolKind::kJavaPf, 4), asp).elapsed,
            asp_parallel(make_config("myri200", dsm::ProtocolKind::kJavaPf, 4), asp).elapsed);
}

TEST(AppShapeStats, Sci450RunsAreDeterministicToo) {
  AspParams p;
  p.n = 32;
  const auto cfg = make_config("sci450", dsm::ProtocolKind::kJavaIc, 3);
  const auto a = asp_parallel(cfg, p);
  const auto b = asp_parallel(cfg, p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.stats.nonzero(), b.stats.nonzero());
}

TEST(AppShapeStats, NetworkJitterChangesTimingNotResults) {
  // Failure injection: deterministic per-message jitter shifts the timing
  // but must never change program output — and stays reproducible.
  AspParams p;
  p.n = 48;
  auto cfg = make_config("myri200", dsm::ProtocolKind::kJavaPf, 4);
  const auto quiet = asp_parallel(cfg, p);
  cfg.cluster.net.jitter_max = 20 * kMicrosecond;
  const auto noisy1 = asp_parallel(cfg, p);
  const auto noisy2 = asp_parallel(cfg, p);
  EXPECT_EQ(quiet.value, noisy1.value);      // same answer
  EXPECT_NE(quiet.elapsed, noisy1.elapsed);  // different timing
  EXPECT_EQ(noisy1.elapsed, noisy2.elapsed); // still deterministic
}

}  // namespace
}  // namespace hyp::apps
