#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hyp::sim {
namespace {

TEST(SimMutex, MutualExclusion) {
  Engine eng;
  SimMutex m(&eng);
  int in_section = 0;
  int max_in_section = 0;
  for (int i = 0; i < 4; ++i) {
    eng.spawn("worker" + std::to_string(i), [&] {
      for (int rep = 0; rep < 10; ++rep) {
        SimLockGuard guard(m);
        ++in_section;
        max_in_section = std::max(max_in_section, in_section);
        eng.sleep_for(kNanosecond);  // hold across a scheduling point
        --in_section;
      }
    });
  }
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(max_in_section, 1);
}

TEST(SimMutex, FifoHandoff) {
  Engine eng;
  SimMutex m(&eng);
  std::vector<int> order;
  eng.spawn("holder", [&] {
    m.lock();
    eng.sleep_for(10 * kNanosecond);  // let contenders queue in id order
    m.unlock();
  });
  for (int i = 0; i < 3; ++i) {
    eng.spawn("c" + std::to_string(i), [&eng, &m, &order, i] {
      eng.sleep_for(static_cast<TimeDelta>(i + 1) * kNanosecond);
      m.lock();
      order.push_back(i);
      m.unlock();
    });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimMutex, TryLock) {
  Engine eng;
  SimMutex m(&eng);
  eng.spawn("a", [&] {
    EXPECT_TRUE(m.try_lock());
    eng.sleep_for(5 * kNanosecond);
    m.unlock();
  });
  eng.spawn("b", [&] {
    eng.sleep_for(kNanosecond);
    EXPECT_FALSE(m.try_lock());
    eng.sleep_for(10 * kNanosecond);
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
  EXPECT_TRUE(eng.run().empty());
}

TEST(SimMutexDeath, RecursiveLockAborts) {
  Engine eng;
  SimMutex m(&eng);
  eng.spawn("rec", [&] {
    m.lock();
    m.lock();
  });
  EXPECT_DEATH(eng.run(), "recursive");
}

TEST(SimMutexDeath, ForeignUnlockAborts) {
  Engine eng;
  SimMutex m(&eng);
  eng.spawn("locker", [&] {
    m.lock();
    eng.sleep_for(10 * kNanosecond);
    m.unlock();
  });
  eng.spawn("thief", [&] {
    eng.sleep_for(kNanosecond);
    m.unlock();
  });
  EXPECT_DEATH(eng.run(), "non-owner");
}

TEST(SimCondVar, WaitNotifyOne) {
  Engine eng;
  SimMutex m(&eng);
  SimCondVar cv(&eng);
  bool ready = false;
  Time consumer_woke = 0;
  eng.spawn("consumer", [&] {
    SimLockGuard guard(m);
    while (!ready) cv.wait(m);
    consumer_woke = eng.now();
  });
  eng.spawn("producer", [&] {
    eng.sleep_for(3 * kMicrosecond);
    SimLockGuard guard(m);
    ready = true;
    cv.notify_one();
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(consumer_woke, 3 * kMicrosecond);
}

TEST(SimCondVar, NotifyAllWakesEveryWaiter) {
  Engine eng;
  SimMutex m(&eng);
  SimCondVar cv(&eng);
  bool go = false;
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    eng.spawn("w" + std::to_string(i), [&] {
      SimLockGuard guard(m);
      while (!go) cv.wait(m);
      ++woke;
    });
  }
  eng.spawn("broadcaster", [&] {
    eng.sleep_for(kMicrosecond);
    SimLockGuard guard(m);
    go = true;
    cv.notify_all();
  });
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(woke, 5);
}

TEST(SimCondVar, NotifyWithoutWaitersIsLost) {
  // Condition variables do not latch signals: a notify with nobody waiting
  // must not wake a later waiter (that is what the predicate loop is for).
  Engine eng;
  SimMutex m(&eng);
  SimCondVar cv(&eng);
  eng.spawn("early-notify", [&] {
    SimLockGuard guard(m);
    cv.notify_one();
  });
  Fiber* late = eng.spawn("late-waiter", [&] {
    eng.sleep_for(kMicrosecond);
    SimLockGuard guard(m);
    cv.wait(m);  // never signaled again -> stays blocked
  });
  auto stuck = eng.run();
  ASSERT_EQ(stuck.size(), 1u);
  EXPECT_EQ(stuck[0], late->name());
}

TEST(SimBarrier, ReleasesAllPartiesTogether) {
  Engine eng;
  SimBarrier barrier(&eng, 3);
  std::vector<Time> release_times;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("p" + std::to_string(i), [&eng, &barrier, &release_times, i] {
      eng.sleep_for(static_cast<TimeDelta>(i * 10) * kNanosecond);
      barrier.arrive_and_wait();
      release_times.push_back(eng.now());
    });
  }
  EXPECT_TRUE(eng.run().empty());
  ASSERT_EQ(release_times.size(), 3u);
  for (Time t : release_times) EXPECT_EQ(t, 20 * kNanosecond);  // slowest party
}

TEST(SimBarrier, ReusableAcrossGenerations) {
  Engine eng;
  SimBarrier barrier(&eng, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    eng.spawn("p" + std::to_string(i), [&eng, &barrier, &rounds_done, i] {
      for (int round = 0; round < 5; ++round) {
        eng.sleep_for(static_cast<TimeDelta>(i + 1) * kNanosecond);
        barrier.arrive_and_wait();
      }
      ++rounds_done;
    });
  }
  EXPECT_TRUE(eng.run().empty());
  EXPECT_EQ(rounds_done, 2);
}

TEST(FifoServer, SerializesOverlappingRequests) {
  Engine eng;
  FifoServer server(&eng);
  std::vector<Time> completions;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("client" + std::to_string(i), [&eng, &server, &completions] {
      server.serve(10 * kMicrosecond);
      completions.push_back(eng.now());
    });
  }
  eng.run();
  EXPECT_EQ(completions,
            (std::vector<Time>{10 * kMicrosecond, 20 * kMicrosecond, 30 * kMicrosecond}));
  EXPECT_EQ(server.jobs_served(), 3u);
  EXPECT_EQ(server.busy_time(), 30 * kMicrosecond);
}

TEST(FifoServer, IdleServerStartsImmediately) {
  Engine eng;
  FifoServer server(&eng);
  eng.spawn("client", [&] {
    eng.sleep_for(100 * kMicrosecond);
    Time start = server.serve(kMicrosecond);
    EXPECT_EQ(start, 100 * kMicrosecond);
    EXPECT_EQ(eng.now(), 101 * kMicrosecond);
  });
  eng.run();
}

TEST(FifoServer, ReserveAccountsWithoutBlocking) {
  Engine eng;
  FifoServer server(&eng);
  eng.spawn("client", [&] {
    Time start = server.reserve(5 * kMicrosecond);
    EXPECT_EQ(start, 0u);
    EXPECT_EQ(eng.now(), 0u);  // reserve does not advance the caller
    EXPECT_EQ(server.free_at(), 5 * kMicrosecond);
  });
  eng.run();
}

}  // namespace
}  // namespace hyp::sim
