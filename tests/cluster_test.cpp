#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hyp::cluster {
namespace {

constexpr ServiceId kEcho = 1;
constexpr ServiceId kOneWay = 2;
constexpr ServiceId kDeferred = 3;

ClusterParams tiny_params() {
  ClusterParams p;
  p.name = "test";
  p.default_nodes = 4;
  p.net.latency = 10 * kMicrosecond;
  p.net.bandwidth_bytes_per_sec = 100e6;  // 10 ns per byte
  p.net.send_overhead = 1 * kMicrosecond;
  p.net.recv_overhead = 2 * kMicrosecond;
  p.cpu.hz = 100e6;
  p.cpu.check_cycles = 10;
  return p;
}

TEST(ClusterParams, PresetsMatchThePaperConstants) {
  auto myri = ClusterParams::myrinet200();
  EXPECT_EQ(myri.default_nodes, 12);
  EXPECT_DOUBLE_EQ(myri.cpu.hz, 200e6);
  EXPECT_EQ(myri.cpu.page_fault_cost, 22 * kMicrosecond);  // paper §4.2

  auto sci = ClusterParams::sci450();
  EXPECT_EQ(sci.default_nodes, 6);
  EXPECT_DOUBLE_EQ(sci.cpu.hz, 450e6);
  EXPECT_EQ(sci.cpu.page_fault_cost, 12 * kMicrosecond);  // paper §4.2

  // The same check is cheaper in wall time on the faster CPU — the paper's
  // cross-cluster argument in §4.3 depends on this.
  EXPECT_GT(myri.cpu.check_cost(), sci.cpu.check_cost());
}

TEST(ClusterParams, ByNameResolvesBothPresets) {
  EXPECT_EQ(ClusterParams::by_name("myri200").name, "myri200");
  EXPECT_EQ(ClusterParams::by_name("sci450").name, "sci450");
}

TEST(ClusterParamsDeath, ByNameRejectsJunk) {
  EXPECT_DEATH(ClusterParams::by_name("infiniband"), "unknown cluster preset");
}

TEST(NetworkParams, WireTimeIsLatencyPlusBytesOverBandwidth) {
  auto p = tiny_params();
  EXPECT_EQ(p.net.wire_time(0), 10 * kMicrosecond);
  // 1000 bytes at 100 MB/s = 10 us.
  EXPECT_EQ(p.net.wire_time(1000), 20 * kMicrosecond);
}

TEST(Cluster, NodeCountDefaultsToPreset) {
  Cluster c(tiny_params());
  EXPECT_EQ(c.node_count(), 4);
  Cluster c2(tiny_params(), 2);
  EXPECT_EQ(c2.node_count(), 2);
}

TEST(Cluster, CallRoundTripsPayloadAndTime) {
  Cluster c(tiny_params(), 2);
  c.node(1).register_service(kEcho, [&](Incoming& in) {
    auto v = in.reader.get<std::uint32_t>();
    Buffer out;
    out.put<std::uint32_t>(v + 1);
    c.reply(in, std::move(out));
  });
  Time elapsed = 0;
  c.spawn_thread(0, "caller", [&] {
    Buffer req;
    req.put<std::uint32_t>(41);
    const Time begin = c.engine().now();
    Buffer resp = c.call(0, 1, kEcho, std::move(req));
    elapsed = c.engine().now() - begin;
    BufferReader r(resp);
    EXPECT_EQ(r.get<std::uint32_t>(), 42u);
  });
  c.run();
  // Request: 1us send + 10us latency + 40ns wire + 2us recv = ~13.04us.
  // Reply: same shape. Total ~26.1us.
  EXPECT_GT(elapsed, 26 * kMicrosecond);
  EXPECT_LT(elapsed, 27 * kMicrosecond);
}

TEST(Cluster, OneWaySendInvokesHandlerAfterDelay) {
  Cluster c(tiny_params(), 2);
  Time handled_at = 0;
  c.node(1).register_service(kOneWay, [&](Incoming& in) {
    EXPECT_EQ(in.from, 0);
    EXPECT_EQ(in.to, 1);
    EXPECT_EQ(in.reply_token, 0u);
    handled_at = c.engine().now();
  });
  c.spawn_thread(0, "sender", [&] {
    Buffer b;
    b.put<std::uint8_t>(1);
    c.send(0, 1, kOneWay, std::move(b));
  });
  c.run();
  // 1us send + 10us latency + ~0 wire + 2us recv.
  EXPECT_GE(handled_at, 13 * kMicrosecond);
  EXPECT_LT(handled_at, 14 * kMicrosecond);
}

TEST(Cluster, ServiceQueueSerializesConcurrentArrivals) {
  // Two messages arriving together at one node are handled 2us (recv
  // overhead) apart, not simultaneously.
  Cluster c(tiny_params(), 3);
  std::vector<Time> handled;
  c.node(2).register_service(kOneWay, [&](Incoming&) { handled.push_back(c.engine().now()); });
  for (NodeId src : {0, 1}) {
    c.spawn_thread(src, "s" + std::to_string(src), [&c, src] {
      Buffer b;
      b.put<std::uint8_t>(0);
      c.send(src, 2, kOneWay, std::move(b));
    });
  }
  c.run();
  ASSERT_EQ(handled.size(), 2u);
  EXPECT_EQ(handled[1] - handled[0], 2 * kMicrosecond);
}

TEST(Cluster, DeferredReplyViaExtendService) {
  // A handler can model extra service work (e.g. a page copy) and delay its
  // reply until that work completes.
  Cluster c(tiny_params(), 2);
  c.node(1).register_service(kDeferred, [&](Incoming& in) {
    const Time done_at = c.node(1).extend_service(100 * kMicrosecond);
    Buffer out;
    out.put<std::uint8_t>(1);
    c.reply(in, std::move(out), done_at - c.engine().now());
  });
  Time elapsed = 0;
  c.spawn_thread(0, "caller", [&] {
    Buffer req;
    req.put<std::uint8_t>(0);
    const Time begin = c.engine().now();
    c.call(0, 1, kDeferred, std::move(req));
    elapsed = c.engine().now() - begin;
  });
  c.run();
  EXPECT_GT(elapsed, 126 * kMicrosecond);  // ~26us transport + 100us service
}

TEST(Cluster, MessagesAreCountedOnTheSender) {
  Cluster c(tiny_params(), 2);
  c.node(1).register_service(kOneWay, [](Incoming&) {});
  c.spawn_thread(0, "sender", [&] {
    Buffer b;
    b.put<std::uint64_t>(7);
    c.send(0, 1, kOneWay, std::move(b));
  });
  c.run();
  EXPECT_EQ(c.node(0).stats().get(Counter::kMessages), 1u);
  EXPECT_EQ(c.node(0).stats().get(Counter::kMessageBytes), 8u);
  EXPECT_EQ(c.total_stats().get(Counter::kMessages), 1u);
}

TEST(Cluster, SpawnThreadCountsRemoteSpawns) {
  Cluster c(tiny_params(), 2);
  c.spawn_thread(1, "worker", [] {});
  c.run();
  EXPECT_EQ(c.node(1).stats().get(Counter::kRemoteThreadSpawns), 1u);
}

TEST(Cluster, CpuClockBatchesCharges) {
  Cluster c(tiny_params(), 1);
  Time after = 0;
  CpuClock clock(&c.params().cpu);
  c.spawn_thread(0, "worker", [&] {
    clock.charge_cycles(100);  // 1us at 100 MHz
    clock.charge(4 * kMicrosecond);
    EXPECT_EQ(c.engine().now(), 0u);  // nothing advanced yet
    clock.flush();
    after = c.engine().now();
  });
  c.run();
  EXPECT_EQ(after, 5 * kMicrosecond);
  EXPECT_EQ(clock.total_charged(), 5 * kMicrosecond);
  EXPECT_EQ(clock.pending(), 0u);
}

TEST(ClusterDeath, LoopbackSendAborts) {
  Cluster c(tiny_params(), 2);
  c.spawn_thread(0, "bad", [&] {
    Buffer b;
    c.send(0, 0, kOneWay, std::move(b));
  });
  EXPECT_DEATH(c.run(), "loopback");
}

TEST(ClusterDeath, MissingHandlerAborts) {
  Cluster c(tiny_params(), 2);
  c.spawn_thread(0, "sender", [&] {
    Buffer b;
    c.send(0, 1, 99, std::move(b));
  });
  EXPECT_DEATH(c.run(), "no handler for service");
}

TEST(ClusterDeath, DeadlockAbortsWithFiberName) {
  Cluster c(tiny_params(), 1);
  c.spawn_thread(0, "waiting-on-godot", [&] { c.engine().park(); });
  EXPECT_DEATH(c.run(), "waiting-on-godot");
}

}  // namespace
}  // namespace hyp::cluster
