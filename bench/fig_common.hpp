// Shared harness for the figure-reproducing benchmarks (Figures 1-5).
//
// Each figure binary binds one application and its problem parameters, then
// calls run_figure(): a sweep over both clusters (200 MHz/Myrinet with 1-12
// nodes, 450 MHz/SCI with 1-6 — the paper's x-axes) and both protocols.
// Output: a CSV block (one row per point, with event counters) followed by a
// per-cluster table mirroring the paper's series and the java_pf improvement
// summary quoted in §4.3.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "common/cli.hpp"

namespace hyp::bench {

struct SweepPoint {
  std::string cluster;
  std::string protocol;
  int nodes = 0;
  apps::RunResult result;
};

struct FigureSpec {
  std::string id;          // e.g. "fig5"
  std::string title;       // e.g. "ASP: java_pf vs. java_ic"
  std::string workload;    // human-readable problem description
  // Runs the application at one experiment point.
  std::function<apps::RunResult(const apps::VmConfig&)> run;
  std::size_t region_bytes = std::size_t{256} << 20;
};

struct SweepOptions {
  std::vector<int> myri_nodes = {1, 2, 4, 6, 8, 10, 12};
  std::vector<int> sci_nodes = {1, 2, 3, 4, 5, 6};
  bool run_myri = true;
  bool run_sci = true;
  // When non-empty, a gnuplot data file (<id>.dat) and script (<id>.gp)
  // replicating the paper figure's axes are written into this directory.
  std::string plot_dir;
};

// Registers the sweep-control flags shared by all figure binaries.
void add_sweep_flags(Cli& cli);
SweepOptions sweep_from_cli(const Cli& cli);

// Executes the sweep and prints CSV + tables + improvement summary.
// Returns all measured points (for binaries that post-process).
std::vector<SweepPoint> run_figure(const FigureSpec& spec, const SweepOptions& opts);

}  // namespace hyp::bench
