// Shared harness for the figure-reproducing benchmarks (Figures 1-5).
//
// Each figure binary binds one application and its problem parameters, then
// calls run_figure(): a sweep over both clusters (200 MHz/Myrinet with 1-12
// nodes, 450 MHz/SCI with 1-6 — the paper's x-axes) and both protocols.
// Output: a CSV block (one row per point, with event counters) followed by a
// per-cluster table mirroring the paper's series and the java_pf improvement
// summary quoted in §4.3.
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "cluster/params.hpp"
#include "cluster/trace.hpp"
#include "common/cli.hpp"
#include "obs/heat.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/phase.hpp"
#include "obs/race.hpp"

namespace hyp::bench {

struct SweepPoint {
  std::string cluster;
  std::string protocol;
  int nodes = 0;
  apps::RunResult result;
};

struct FigureSpec {
  std::string id;          // e.g. "fig5"
  std::string title;       // e.g. "ASP: java_pf vs. java_ic"
  std::string workload;    // human-readable problem description
  // Runs the application at one experiment point.
  std::function<apps::RunResult(const apps::VmConfig&)> run;
  std::size_t region_bytes = std::size_t{256} << 20;
};

struct SweepOptions {
  std::vector<int> myri_nodes = {1, 2, 4, 6, 8, 10, 12};
  std::vector<int> sci_nodes = {1, 2, 3, 4, 5, 6};
  bool run_myri = true;
  bool run_sci = true;
  // When non-empty, a gnuplot data file (<id>.dat) and script (<id>.gp)
  // replicating the paper figure's axes are written into this directory.
  std::string plot_dir;
};

// Registers the sweep-control flags shared by all figure binaries.
void add_sweep_flags(Cli& cli);
SweepOptions sweep_from_cli(const Cli& cli);

// Uniform observability wiring for the bench binaries:
//
//   --trace-out FILE    Perfetto/Chrome trace_events JSON of the *last*
//                       attached run (openable in ui.perfetto.dev);
//   --metrics-out FILE  hyp-metrics-v1 JSON: one point per run with every
//                       nonzero counter, the log2 latency/size histograms,
//                       the hottest pages and the per-node phase split.
//   --fault-profile S   deterministic network fault injection for every run
//                       (docs/FAULTS.md grammar, e.g.
//                       "drop2%,dup1%,reorder5us,seed=7"; default off).
//   --rpc-dedup-window N  overrides the profile's receiver-side dedup window
//                       (dedupwin=N): how many out-of-order sequence numbers
//                       each receiver remembers for duplicate suppression.
//                       0 = unbounded exact dedup; -1 (default) = no override.
//   --trace-stream      stream the trace to --trace-out incrementally
//                       (double-buffered sink; nothing is ever dropped and
//                       the file covers *every* attached run, not just the
//                       last one). Default off: the one-shot export below is
//                       byte-identical to previous releases.
//   --race-detect S     vector-clock data-race detection (docs/RACES.md);
//                       grammar on|off[,racegran=field|page], default off.
//   --race-out FILE     write the human-readable race report (one section
//                       per attached run) to FILE; requires --race-detect on.
//
// run_figure() drives attach/capture/finish automatically when given a
// recorder; binaries that build VmConfigs by hand (ablation_*, ext_*) call
// attach() before each run and capture_run() after, then finish() once.
// All attachments observe without perturbing: a run's virtual time is
// bit-identical with or without them (tests/determinism_golden_test.cpp).
class ObsRecorder {
 public:
  // Registers --trace-out / --metrics-out / --trace-capacity.
  static void add_flags(Cli& cli);

  // Reads the flags; `tool` names the producing binary in the metrics JSON.
  void configure(const Cli& cli, std::string tool);

  bool trace_wanted() const { return !trace_path_.empty(); }
  bool metrics_wanted() const { return !metrics_path_.empty(); }
  bool active() const { return trace_wanted() || metrics_wanted(); }

  // True when --race-detect on was given; the detector is then attached to
  // every run (and its tallies injected into the metrics counters).
  bool race_wanted() const { return race_cfg_.enabled; }
  obs::RaceDetector* race() { return race_det_.get(); }

  // True when --fault-profile was given (and is not "off").
  bool fault_wanted() const { return fault_.any(); }
  const cluster::FaultProfile& fault() const { return fault_; }
  // Merges the configured fault profile into `params` (no-op when the flag
  // was absent). attach() does this for VmConfig-driven runs; harnesses that
  // construct a Cluster by hand call this on their ClusterParams first.
  void apply_fault(cluster::ClusterParams& params) const;

  // Wires the trace/heat/phase attachments into `cfg` (the trace is cleared,
  // heat/phases are re-initialized by the VM constructor), so the next VM
  // built from `cfg` is observed. No-op when inactive.
  void attach(hyperion::VmConfig& cfg);

  // Records one finished experiment point. The caller fills identity and
  // result fields; the heat / phase / trace sections are appended from the
  // current attachments. No-op when inactive.
  void capture(obs::MetricsPoint mp);

  // One-line capture for hand-rolled sweeps: label + RunResult (+ optional
  // protocol/nodes identity).
  void capture_run(const std::string& label, const apps::RunResult& result,
                   const std::string& protocol = "", int nodes = -1);

  // capture_run plus the measurement window the point was measured under
  // (warmup/cooldown trimmed, docs/SERVING.md), serialized as the optional
  // "window" object in hyp-metrics-v1. Plain capture_run points carry none —
  // the window annotation is strictly opt-in.
  void capture_run_windowed(const std::string& label,
                            const apps::RunResult& result,
                            const std::string& protocol, int nodes,
                            Time window_start, Time window_end,
                            std::uint64_t excluded_ops);

  // For harnesses that drive a Cluster (+ optionally a DsmSystem) without a
  // HyperionVM (ablation_consistency): wires the trace and phase table into
  // the cluster and the heat table into the DSM.
  void attach_cluster(cluster::Cluster& c, dsm::DsmSystem* d = nullptr);
  // Captures a finished cluster-level run: elapsed = engine().now(),
  // stats = total_stats().
  void capture_cluster(const std::string& label, cluster::Cluster& c);

  // Writes the requested files (and prints their paths). run_figure() calls
  // this; hand-rolled sweeps call it once after the last capture.
  void finish();

 private:
  std::string tool_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string race_path_;
  cluster::FaultProfile fault_;  // default: off
  obs::RaceConfig race_cfg_;     // default: off
  bool trace_stream_ = false;
  std::unique_ptr<cluster::TraceLog> trace_;
  // Streaming export (--trace-stream): the file is open for the whole sweep
  // and batches are appended as the log's spare buffer fills.
  std::unique_ptr<std::ofstream> stream_out_;
  std::unique_ptr<obs::PerfettoStreamWriter> stream_writer_;
  obs::PageHeatTable heat_;
  obs::PhaseAccounting phases_;
  std::unique_ptr<obs::RaceDetector> race_det_;
  // The --race-out report: one section per captured run (the detector is
  // reset by each VM construction, so tallies are per-run).
  std::ostringstream race_report_;
  std::uint64_t races_total_ = 0;
  std::vector<obs::MetricsPoint> points_;
  bool finished_ = false;
};

// Executes the sweep and prints CSV + tables + improvement summary.
// Returns all measured points (for binaries that post-process). When `obs`
// is non-null, every point is run with the recorder attached and captured,
// and obs->finish() is called before returning.
std::vector<SweepPoint> run_figure(const FigureSpec& spec, const SweepOptions& opts,
                                   ObsRecorder* obs = nullptr);

}  // namespace hyp::bench
