// Figure 1: Pi — java_pf vs. java_ic on both clusters.
// Paper result: the protocols perform essentially identically (Pi makes
// very little use of objects).
#include "apps/pi.hpp"
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace hyp;
  Cli cli("fig1_pi — reproduces Figure 1 (Pi, 50M-interval Riemann sum)");
  bench::add_sweep_flags(cli);
  bench::ObsRecorder::add_flags(cli);
  cli.flag_int("intervals", 2'000'000, "Riemann intervals (paper: 50000000)")
      .flag_bool("full", false, "use the paper's problem size");
  if (!cli.parse(argc, argv)) return 0;

  apps::PiParams params;
  params.intervals = cli.get_bool("full") ? 50'000'000 : cli.get_int("intervals");

  bench::FigureSpec spec;
  spec.id = "fig1";
  spec.title = "Pi: java_pf vs. java_ic";
  spec.workload = "Riemann sum, " + std::to_string(params.intervals) + " intervals";
  spec.run = [params](const apps::VmConfig& cfg) { return apps::pi_parallel(cfg, params); };
  bench::ObsRecorder obs;
  obs.configure(cli, "fig1");
  bench::run_figure(spec, bench::sweep_from_cli(cli), &obs);
  return 0;
}
