// Figure 5: ASP — java_pf vs. java_ic on both clusters.
// Paper result: the largest java_pf improvement (64% on Myrinet): the inner
// loop is an integer add + compare carrying three locality checks.
#include "apps/asp.hpp"
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace hyp;
  Cli cli("fig5_asp — reproduces Figure 5 (ASP, Floyd on a 2000-node graph)");
  bench::add_sweep_flags(cli);
  bench::ObsRecorder::add_flags(cli);
  cli.flag_int("n", 400, "graph size (paper: 2000)")
      .flag_bool("full", false, "use the paper's problem size (slow)");
  if (!cli.parse(argc, argv)) return 0;

  apps::AspParams params;
  params.n = cli.get_bool("full") ? 2000 : static_cast<int>(cli.get_int("n"));

  bench::FigureSpec spec;
  spec.id = "fig5";
  spec.title = "ASP: java_pf vs. java_ic";
  spec.workload = "all-pairs shortest paths, " + std::to_string(params.n) + "-node graph";
  spec.run = [params](const apps::VmConfig& cfg) { return apps::asp_parallel(cfg, params); };
  bench::ObsRecorder obs;
  obs.configure(cli, "fig5");
  bench::run_figure(spec, bench::sweep_from_cli(cli), &obs);
  return 0;
}
