// Ablation: compiling vs interpreting (§1: "we favor compiling rather than
// interpreting, since we are interested in computationally intensive
// programs ... We expect the cost of compiling to native code will be
// recovered many times over").
//
// Runs the same Riemann-sum Pi once as compiled code (src/apps/pi, what
// java2c output looks like) and once as interpreted JIR bytecode, on the
// same cluster, and reports the slowdown — the quantity Hyperion's
// compile-to-C design buys back.
#include <cstdio>
#include <iostream>
#include <string>

#include "apps/pi.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"
#include "jir/assembler.hpp"
#include "jir/interp.hpp"

using namespace hyp;

namespace {

Time run_interpreted(dsm::ProtocolKind kind, int nodes, std::int64_t intervals,
                     bench::ObsRecorder& obs) {
  std::string src = "func main args=0 locals=1\n  lconst 1\n  newarray_d\n  store 0\n";
  for (int w = 0; w < nodes; ++w) {
    const std::int64_t begin = intervals * w / nodes;
    const std::int64_t end = intervals * (w + 1) / nodes;
    src += "  load 0\n  lconst " + std::to_string(begin) + "\n  lconst " + std::to_string(end) +
           "\n  lconst " + std::to_string(intervals) + "\n  spawn worker\n";
  }
  src += "  joinall\n  lconst 0\n  ret\nend\n";
  src += R"(
func worker args=4 locals=7
  dconst 0.0
  store 6
  load 1
  store 4
loop:
  load 4
  load 2
  lcmp
  ifge flush
  load 4
  l2d
  dconst 0.5
  dadd
  load 3
  l2d
  ddiv
  store 5
  dconst 4.0
  dconst 1.0
  load 5
  load 5
  dmul
  dadd
  ddiv
  load 6
  dadd
  store 6
  charge 32
  load 4
  lconst 1
  ladd
  store 4
  goto loop
flush:
  load 0
  monitorenter
  load 0
  lconst 0
  load 0
  lconst 0
  aload_d
  load 6
  dadd
  astore_d
  load 0
  monitorexit
  retvoid
end
)";
  auto assembled = jir::assemble(src);
  HYP_CHECK_MSG(assembled.ok(), assembled.error);

  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.nodes = nodes;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{32} << 20;
  obs.attach(cfg);
  hyperion::HyperionVM vm(cfg);
  vm.run_main([&](hyperion::JavaEnv& main) {
    jir::Interpreter interp(&assembled.program, &main);
    interp.run("main");
  });
  apps::RunResult rr;
  rr.elapsed = vm.elapsed();
  rr.stats = vm.stats();
  obs.capture_run("interpreted", rr, dsm::protocol_name(kind), nodes);
  return vm.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_interp — compiled (java2c-style) vs interpreted bytecode");
  cli.flag_int("nodes", 4, "cluster nodes").flag_int("intervals", 500000, "Riemann intervals");
  bench::ObsRecorder::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsRecorder obs;
  obs.configure(cli, "ablation_interp");

  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const std::int64_t intervals = cli.get_int("intervals");
  std::printf("# ablation_interp — §1: why Hyperion compiles instead of interpreting\n");
  std::printf("# Pi, %lld intervals, myri200, %d nodes; per-insn dispatch modeled at %llu cycles\n\n",
              static_cast<long long>(intervals), nodes,
              static_cast<unsigned long long>(jir::kDispatchCycles));

  Table t({"protocol", "compiled (s)", "interpreted (s)", "slowdown"});
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    apps::PiParams params;
    params.intervals = intervals;
    auto cfg = apps::make_config("myri200", kind, nodes);
    obs.attach(cfg);
    const auto compiled_result = apps::pi_parallel(cfg, params);
    obs.capture_run("compiled", compiled_result, dsm::protocol_name(kind), nodes);
    const double compiled = to_seconds(compiled_result.elapsed);
    const double interpreted = to_seconds(run_interpreted(kind, nodes, intervals, obs));
    t.add_row({dsm::protocol_name(kind), fmt_double(compiled, 3), fmt_double(interpreted, 3),
               fmt_double(interpreted / compiled, 1) + "x"});
  }
  t.write_pretty(std::cout);
  obs.finish();
  std::printf(
      "\nexpected shape: interpretation costs ~10x on this compute-bound kernel —\n"
      "the margin Hyperion's bytecode-to-C translation recovers (§1).\n");
  return 0;
}
