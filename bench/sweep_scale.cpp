// sweep_scale: does the simulator itself scale to big clusters?
//
// Every other bench binary reports *virtual* time at paper-era node counts
// (1-12). This harness sweeps the node axis well past the paper — default
// N in {8, 32, 128, 256, 1024} — under two workloads:
//
//   * Jacobi at the paper's 1024x1024 mesh (~10^6 shared doubles): the
//     memory-scale driver. A dense per-pair or per-node-squared structure
//     anywhere in the stack shows up immediately as super-linear host RSS.
//   * Barnes: the protocol-gap curve. The paper's java_pf-vs-java_ic gap is
//     measured at <= 12 nodes; this extends the curve to 1024 to show where
//     the irregular tree traffic stops rewarding prefetching.
//
// Per point the harness reports virtual seconds, the java_ic/java_pf gap,
// host events/sec, host peak RSS (getrusage high-water — points run in
// ascending N order so each reading is attributable), and — when a
// --fault-profile is given — fault counts, checkpoint traffic and the
// failure detector's share of engine events. Everything lands in the
// hyp-metrics-v1 JSON (--metrics-out), host fields included, so two sweeps
// gate against each other with scripts/compare_metrics.py.
//
// Exit code: 0 when every point's answer matches its serial reference
// (within fp-merge-order tolerance), 1 otherwise.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/barnes.hpp"
#include "apps/jacobi.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"

namespace {

using namespace hyp;
using Clock = std::chrono::steady_clock;

// Per-thread partial checksums merge through a monitor, so the fp addition
// order varies with the partition; the tolerance absorbs merge-order noise
// while still failing loudly on any genuinely wrong answer.
constexpr double kRelTol = 1e-7;

std::vector<int> parse_nodes(const std::string& spec) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v < 1) {
      std::fprintf(stderr, "sweep_scale: bad --nodes entry '%s'\n", tok.c_str());
      std::exit(2);
    }
    out.push_back(static_cast<int>(v));
    pos = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "sweep_scale: --nodes must name at least one value\n");
    std::exit(2);
  }
  return out;
}

std::uint64_t peak_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KB on Linux
}

struct ScalePoint {
  std::string workload;
  std::string protocol;
  int nodes = 0;
  double value = 0;
  double reference = 0;
  Time elapsed = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t rss_kb = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t promotions = 0;
  std::uint64_t ckpt_msgs = 0;
  std::uint64_t ckpt_bytes = 0;

  bool stable() const {
    const double denom = std::abs(reference) > 1.0 ? std::abs(reference) : 1.0;
    return std::abs(value - reference) / denom <= kRelTol;
  }
  std::uint64_t events_per_sec() const {
    return wall_s > 0 ? static_cast<std::uint64_t>(static_cast<double>(events) / wall_s)
                      : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "sweep_scale — host memory / throughput and the protocol gap as the "
      "cluster grows past the paper's 12 nodes (docs/SCALING.md)");
  bench::ObsRecorder::add_flags(cli);
  cli.flag_string("cluster", "myri200", "cluster preset (myri200 or sci450)")
      .flag_string("nodes", "8,32,128,256,1024", "node counts, ascending")
      .flag_int("jacobi-n", 1024, "Jacobi mesh edge (1024 = the paper's ~10^6 objects)")
      .flag_int("jacobi-steps", 2, "Jacobi time steps per point")
      .flag_int("barnes-bodies", 2048, "Barnes bodies (must be >= the largest N)")
      .flag_int("barnes-steps", 2, "Barnes time steps per point")
      .flag_bool("quick", false, "CI smoke: N in {8,64}, reduced problem sizes");
  if (!cli.parse(argc, argv)) return 0;

  const bool quick = cli.get_bool("quick");
  const std::string cluster = cli.get_string("cluster");
  const std::vector<int> node_counts =
      quick ? std::vector<int>{8, 64} : parse_nodes(cli.get_string("nodes"));

  apps::JacobiParams jp;
  jp.n = quick ? 256 : static_cast<int>(cli.get_int("jacobi-n"));
  jp.steps = quick ? 2 : static_cast<int>(cli.get_int("jacobi-steps"));
  apps::BarnesParams bp;
  bp.bodies = quick ? 512 : static_cast<int>(cli.get_int("barnes-bodies"));
  bp.steps = quick ? 1 : static_cast<int>(cli.get_int("barnes-steps"));
  for (int n : node_counts) {
    if (bp.bodies < n) {
      std::fprintf(stderr, "sweep_scale: --barnes-bodies (%d) must be >= the largest N (%d)\n",
                   bp.bodies, n);
      return 2;
    }
  }

  bench::ObsRecorder obs;
  obs.configure(cli, "sweep_scale");

  std::printf("# sweep_scale — %s, jacobi %dx%d/%d steps, barnes %d bodies/%d steps\n\n",
              cluster.c_str(), jp.n, jp.n, jp.steps, bp.bodies, bp.steps);

  // Serial references, once per workload.
  const double jacobi_ref = apps::jacobi_serial(jp);
  const double barnes_ref = apps::barnes_serial(bp);

  // The shared region is statically partitioned into one allocation zone per
  // node (dsm/address.hpp) and Barnes roots its whole octree in node 0's
  // zone, so the region must grow with N to keep any single zone >= ~2 MB.
  // The page size grows with it, capping total page count: the per-node
  // presence/twin tables are O(pages) each, so a capped page count keeps
  // that metadata linear — not quadratic — in N.
  auto config_for = [&](dsm::ProtocolKind kind, int nodes) {
    const std::size_t region = std::max<std::size_t>(
        std::size_t{256} << 20, static_cast<std::size_t>(nodes) << 21);
    apps::VmConfig cfg = apps::make_config(cluster, kind, nodes, region);
    while (region / cfg.cluster.page_bytes > 65536) cfg.cluster.page_bytes *= 2;
    return cfg;
  };

  std::vector<ScalePoint> points;
  auto run_point = [&](const char* workload, dsm::ProtocolKind kind, int nodes,
                       double reference, auto&& runner) {
    apps::VmConfig cfg = config_for(kind, nodes);
    obs.attach(cfg);
    const auto t0 = Clock::now();
    const apps::RunResult r = runner(cfg);
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

    ScalePoint p;
    p.workload = workload;
    p.protocol = dsm::protocol_name(kind);
    p.nodes = nodes;
    p.value = r.value;
    p.reference = reference;
    p.elapsed = r.elapsed;
    p.wall_s = wall;
    p.events = r.events_processed;
    p.rss_kb = peak_rss_kb();
    const auto counters = r.stats.nonzero();
    auto cnt = [&](const char* name) {
      auto it = counters.find(name);
      return it == counters.end() ? std::uint64_t{0} : it->second;
    };
    p.heartbeats = cnt("ha_heartbeats");
    p.retransmits = cnt("retransmits");
    p.timeouts = cnt("rpc_timeouts");
    p.promotions = cnt("ha_promotions");
    p.ckpt_msgs = cnt("ha_checkpoint_msgs");
    p.ckpt_bytes = cnt("ha_checkpoint_bytes");

    if (obs.active()) {
      obs::MetricsPoint mp;
      mp.cluster = cluster;
      mp.protocol = p.protocol;
      mp.nodes = nodes;
      mp.label = workload;
      mp.elapsed = r.elapsed;
      mp.value = r.value;
      mp.has_value = true;
      mp.stats = r.stats;
      mp.has_host = true;
      mp.host_wall_s = wall;
      mp.host_events = p.events;
      mp.host_events_per_sec = p.events_per_sec();
      mp.host_peak_rss_kb = p.rss_kb;
      obs.capture(std::move(mp));
    }
    std::printf("  ran %s/%s N=%d: %.3f virtual s, %.2f wall s, rss %" PRIu64 " KB\n",
                workload, p.protocol.c_str(), nodes, to_seconds(p.elapsed), wall, p.rss_kb);
    points.push_back(p);
    return p;
  };

  // Ascending N, so each peak-RSS reading belongs to its point.
  for (int n : node_counts) {
    // The paper's 1024^2 mesh has 1022 interior rows — at N=1024 that is
    // fewer rows than nodes, so cap the worker count (the checksum is
    // thread-count independent up to fp merge order).
    apps::JacobiParams jpp = jp;
    if (jp.n - 2 < n) jpp.threads = jp.n - 2;
    for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
      run_point("jacobi", kind, n, jacobi_ref,
                [&](const apps::VmConfig& cfg) { return apps::jacobi_parallel(cfg, jpp); });
      run_point("barnes", kind, n, barnes_ref,
                [&](const apps::VmConfig& cfg) { return apps::barnes_parallel(cfg, bp); });
    }
  }

  // --- per-point table -------------------------------------------------------
  const bool faulty = obs.fault_wanted();
  std::vector<std::string> cols = {"workload", "N",          "protocol", "stable",
                                   "virtual s", "events/sec", "peak RSS (MB)"};
  if (faulty) {
    cols.insert(cols.end(),
                {"heartbeats", "retransmits", "timeouts", "promotions", "ckpt msgs"});
  }
  Table table(cols);
  bool stable = true;
  for (const auto& p : points) {
    stable = stable && p.stable();
    std::vector<std::string> row = {
        p.workload,
        fmt_u64(static_cast<std::uint64_t>(p.nodes)),
        p.protocol,
        p.stable() ? "yes" : "NO",
        fmt_double(to_seconds(p.elapsed), 6),
        fmt_u64(p.events_per_sec()),
        fmt_double(static_cast<double>(p.rss_kb) / 1024.0, 1)};
    if (faulty) {
      row.push_back(fmt_u64(p.heartbeats));
      row.push_back(fmt_u64(p.retransmits));
      row.push_back(fmt_u64(p.timeouts));
      row.push_back(fmt_u64(p.promotions));
      row.push_back(fmt_u64(p.ckpt_msgs));
    }
    table.add_row(row);
  }
  std::printf("\n");
  table.write_pretty(std::cout);

  // --- protocol-gap curve ----------------------------------------------------
  auto find = [&](const char* workload, const char* proto, int n) -> const ScalePoint* {
    for (const auto& p : points) {
      if (p.workload == workload && p.protocol == proto && p.nodes == n) return &p;
    }
    return nullptr;
  };
  Table gap({"workload", "N", "java_ic (s)", "java_pf (s)", "gap"});
  for (const char* workload : {"jacobi", "barnes"}) {
    for (int n : node_counts) {
      const ScalePoint* ic = find(workload, "java_ic", n);
      const ScalePoint* pf = find(workload, "java_pf", n);
      if (ic == nullptr || pf == nullptr) continue;
      const double ic_s = to_seconds(ic->elapsed);
      const double pf_s = to_seconds(pf->elapsed);
      const double g = ic_s > 0 ? (ic_s - pf_s) / ic_s * 100.0 : 0.0;
      char gs[32];
      std::snprintf(gs, sizeof(gs), "%+.1f%%", g);
      gap.add_row({workload, fmt_u64(static_cast<std::uint64_t>(n)), fmt_double(ic_s, 6),
                   fmt_double(pf_s, 6), gs});
    }
  }
  std::printf("\n");
  gap.write_pretty(std::cout);

  // --- memory scaling --------------------------------------------------------
  // Fit the peak-RSS growth exponent over the sweep's extremes: RSS ~ N^k.
  // A dense pair matrix gives k -> 2; traffic-linear structures keep k well
  // below 1 (most of the footprint is the workload itself, not the cluster).
  if (node_counts.size() >= 2) {
    const int n_lo = node_counts.front();
    const int n_hi = node_counts.back();
    const ScalePoint* lo = find("barnes", "java_pf", n_lo);
    const ScalePoint* hi = find("barnes", "java_pf", n_hi);
    if (lo != nullptr && hi != nullptr && lo->rss_kb > 0 && n_hi > n_lo) {
      const double k = std::log(static_cast<double>(hi->rss_kb) /
                                static_cast<double>(lo->rss_kb)) /
                       std::log(static_cast<double>(n_hi) / static_cast<double>(n_lo));
      std::printf("\npeak RSS scaling: %" PRIu64 " KB @ N=%d -> %" PRIu64
                  " KB @ N=%d (exponent %.2f; dense pair state would be ~2)\n",
                  lo->rss_kb, n_lo, hi->rss_kb, n_hi, k);
    }
  }

  std::printf("\nanswer stability: %s\n",
              stable ? "every point matched its serial reference"
                     : "DIVERGED — see table");

  obs.finish();
  return stable ? 0 : 1;
}
