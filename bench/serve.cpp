// serve: the distributed KV/session store under open-loop Zipf traffic
// (docs/SERVING.md).
//
// Sweeps protocol x theta x fault profile and prints an SLO table per cell:
// measured throughput and p50/p99/p999/max latency, the share of measured ops
// whose lifetime overlapped a crash/partition window (the tail-spike
// attribution column), and the correctness verdict — the final store state
// must match the host-side serial replay of the same deterministic op
// streams *exactly*, i.e. zero lost acknowledged writes, under every cell
// including mid-run crashes (with chain backups) and network partitions.
//
// Built-in fault cells (--profiles):
//   none       the recorder's base --fault-profile (default: fault-free)
//   crash      a mid-run kill-and-recover (--crash) with replicas=K
//   partition  a minority split isolating node 1 (--partition-window)
//
// Every cell lands in the hyp-metrics-v1 JSON (--metrics-out) with the
// serve_* counters/histograms plus the serve_p50_us/serve_p99_us/
// serve_p999_us/serve_throughput_ops summary rows that
// scripts/compare_metrics.py gates direction-aware (a p99 rise or a
// throughput drop fails; improvements never do).
//
// Exit code: 0 when every cell verified (zero lost acked writes, exact final
// state), 1 otherwise.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fig_common.hpp"
#include "serve/serve.hpp"

namespace {

using namespace hyp;

std::vector<double> parse_list(const std::string& spec, const char* flag) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || v < 0) {
      std::fprintf(stderr, "serve: bad --%s entry '%s'\n", flag, tok.c_str());
      std::exit(2);
    }
    out.push_back(v);
    pos = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "serve: --%s must name at least one value\n", flag);
    std::exit(2);
  }
  return out;
}

std::vector<std::string> split_names(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

// "1|0.2.3...": isolate node 1 from everyone else.
std::string minority_groups(int nodes) {
  std::string rest;
  for (int n = 0; n < nodes; ++n) {
    if (n == 1) continue;
    if (!rest.empty()) rest += '.';
    rest += std::to_string(n);
  }
  return "1|" + rest;
}

struct Cell {
  std::string label;
  std::string protocol;
  serve::ServeResult r;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "serve — distributed KV store SLOs: protocol x theta x fault profile "
      "under open-loop Zipf traffic (docs/SERVING.md)");
  bench::ObsRecorder::add_flags(cli);
  cli.flag_string("cluster", "myri200", "cluster preset (myri200 or sci450)")
      .flag_int("nodes", 4, "cluster size for every cell")
      .flag_int("keys", 4096, "key-space size")
      .flag_int("shards-per-node", 4, "store shards per node")
      .flag_string("thetas", "0,0.9,0.99", "Zipf theta values to sweep (0 = uniform)")
      .flag_int("read-pct", 90, "reads per 100 ops")
      .flag_int("clients-per-node", 2, "open-loop clients per node")
      .flag_int("ops", 400, "operations per client")
      .flag_double("rate", 4000, "per-client arrival rate, ops/s")
      .flag_int("op-cycles", 2000, "modeled handler work per op, cycles")
      .flag_string("profiles", "none,crash,partition",
                   "fault cells to run (comma-separated subset of "
                   "none,crash,partition,skew,hot; skew = write-heavy dominant "
                   "writer on node 1 (read%=10), the steady-state "
                   "heat-migration cell; hot = skew plus the crash window "
                   "killing the writer, the migration-revert stress cell)")
      .flag_string("crash", "crash1@20ms+10ms",
                   "kill-and-recover window for the crash cell")
      .flag_int("replicas", 2, "chain backup depth K for the crash cell")
      .flag_string("partition-window", "20ms+8ms",
                   "split window for the partition cell (isolates node 1)")
      .flag_double("warmup-us", 0, "exclude ops scheduled in the first N us")
      .flag_double("cooldown-us", 0, "exclude ops scheduled in the last N us")
      .flag_int("seed", 7, "workload + fault seed shared by every cell");
  if (!cli.parse(argc, argv)) return 0;

  const std::string cluster = cli.get_string("cluster");
  const int nodes = cli.get_int("nodes");
  const auto thetas = parse_list(cli.get_string("thetas"), "thetas");
  const auto profiles = split_names(cli.get_string("profiles"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  serve::ServeParams sp;
  sp.keys = static_cast<std::uint64_t>(cli.get_int("keys"));
  sp.shards_per_node = cli.get_int("shards-per-node");
  sp.read_pct = cli.get_int("read-pct");
  sp.clients_per_node = cli.get_int("clients-per-node");
  sp.ops_per_client = static_cast<std::uint64_t>(cli.get_int("ops"));
  sp.rate_ops_per_s = cli.get_double("rate");
  sp.op_cycles = static_cast<std::uint64_t>(cli.get_int("op-cycles"));
  sp.warmup = static_cast<Time>(cli.get_double("warmup-us") * kMicrosecond);
  sp.cooldown = static_cast<Time>(cli.get_double("cooldown-us") * kMicrosecond);
  sp.seed = seed;

  bench::ObsRecorder obs;
  obs.configure(cli, "serve");

  std::printf("# serve — %s, %d nodes, %" PRIu64 " keys, %d clients x %" PRIu64
              " ops @ %g ops/s, read%%=%d, seed=%" PRIu64 "\n\n",
              cluster.c_str(), nodes, sp.keys, sp.clients_per_node * nodes,
              sp.ops_per_client, sp.rate_ops_per_s, sp.read_pct, seed);

  std::vector<Cell> cells;
  bool all_ok = true;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf,
                    dsm::ProtocolKind::kHybrid}) {
    const std::string proto = dsm::protocol_name(kind);
    for (double theta : thetas) {
      sp.theta = theta;
      for (const std::string& profile : profiles) {
        apps::VmConfig cfg = apps::make_config(cluster, kind, nodes);
        obs.attach(cfg);  // trace/heat/phases + the recorder's base profile
        sp.writer_node = -1;
        sp.read_pct = cli.get_int("read-pct");
        if (profile == "skew" || profile == "hot") {
          // Dominant writer: every update comes from node 1 (session
          // affinity), and the mix is forced write-heavy — at the default
          // read%=90 the hot pages never accumulate kMigMinBytes per epoch
          // window and the migration policy would sit idle.
          sp.writer_node = 1;
          sp.read_pct = 10;
        }
        char spec[192];
        if (profile == "crash" || profile == "hot") {
          std::snprintf(spec, sizeof(spec), "replicas=%d,%s,seed=%" PRIu64,
                        static_cast<int>(cli.get_int("replicas")),
                        cli.get_string("crash").c_str(), seed);
          cfg.cluster.fault = cluster::FaultProfile::parse(spec);
          // hot: the dominant writer is then killed mid-run, forcing the
          // migrated homes to revert without losing an acked write.
        } else if (profile == "partition") {
          std::snprintf(spec, sizeof(spec), "partition@%s:%s,seed=%" PRIu64,
                        cli.get_string("partition-window").c_str(),
                        minority_groups(nodes).c_str(), seed);
          cfg.cluster.fault = cluster::FaultProfile::parse(spec);
        } else if (profile != "none" && profile != "skew") {
          std::fprintf(stderr, "serve: unknown --profiles entry '%s'\n",
                       profile.c_str());
          return 2;
        }

        char label[96];
        std::snprintf(label, sizeof(label), "theta%g/%s", theta, profile.c_str());
        Cell cell;
        cell.label = label;
        cell.protocol = proto;
        cell.r = serve::run_serve(cfg, sp);
        if (sp.warmup != 0 || sp.cooldown != 0) {
          obs.capture_run_windowed(label, cell.r.run, proto, nodes,
                                   cell.r.window_start, cell.r.window_end,
                                   cell.r.excluded);
        } else {
          obs.capture_run(label, cell.r.run, proto, nodes);
        }
        all_ok = all_ok && cell.r.state_ok;
        cells.push_back(std::move(cell));
      }
    }
  }

  Table table({"cell", "protocol", "ops", "acked writes", "tput (ops/s)",
               "p50 (us)", "p99 (us)", "p999 (us)", "max (us)", "faultwin ops",
               "lost", "state"});
  for (const auto& c : cells) {
    table.add_row({c.label, c.protocol, fmt_u64(c.r.ops), fmt_u64(c.r.updates),
                   fmt_double(c.r.throughput_ops_s, 0),
                   fmt_double(c.r.p50_us, 1), fmt_double(c.r.p99_us, 1),
                   fmt_double(c.r.p999_us, 1), fmt_double(c.r.max_us, 1),
                   fmt_u64(c.r.faultwin_ops), fmt_u64(c.r.lost_keys),
                   c.r.state_ok ? "ok" : "DIVERGED"});
  }
  table.write_pretty(std::cout);

  std::printf("\nverification: %s\n",
              all_ok ? "PASS — every cell matched its serial reference "
                       "(zero lost acked writes)"
                     : "FAIL — a cell diverged from its serial reference");

  obs.finish();
  return all_ok ? 0 : 1;
}
