// Extension: the paper's stated future work — "We also plan to study the
// effects of using more application threads per node, thus enabling
// computation/communication overlap" (§4.3).
//
// Each node has ONE processor (threads of a node serialize their compute
// through the node's CPU queue), so extra threads can only buy overlap:
// while one thread stalls on a page fetch or a monitor round trip, a
// sibling computes. Reported: execution time of Jacobi and ASP at a fixed
// node count with 1-4 threads per node, under both protocols.
#include <cstdio>
#include <iostream>

#include "apps/asp.hpp"
#include "apps/jacobi.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"

using namespace hyp;

int main(int argc, char** argv) {
  Cli cli("ext_threads_per_node — computation/communication overlap study");
  cli.flag_int("nodes", 4, "cluster nodes")
      .flag_int("asp-n", 256, "ASP graph size")
      .flag_int("jacobi-n", 256, "Jacobi mesh edge")
      .flag_int("jacobi-steps", 30, "Jacobi steps");
  bench::ObsRecorder::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsRecorder obs;
  obs.configure(cli, "ext_threads_per_node");

  const int nodes = static_cast<int>(cli.get_int("nodes"));
  std::printf("# ext_threads_per_node — paper §4.3 future work (overlap via extra threads)\n");
  std::printf("# myri200 cluster, %d nodes, one processor per node\n\n", nodes);

  Table t({"threads/node", "protocol", "jacobi (s)", "asp (s)"});
  for (int tpn = 1; tpn <= 4; ++tpn) {
    for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
      hyperion::VmConfig cfg;
      cfg.cluster = cluster::ClusterParams::myrinet200();
      cfg.nodes = nodes;
      cfg.protocol = kind;
      cfg.region_bytes = std::size_t{128} << 20;

      apps::JacobiParams jac;
      jac.n = static_cast<int>(cli.get_int("jacobi-n"));
      jac.steps = static_cast<int>(cli.get_int("jacobi-steps"));
      jac.threads = nodes * tpn;
      obs.attach(cfg);
      const auto jac_result = apps::jacobi_parallel(cfg, jac);
      obs.capture_run("jacobi threads_per_node=" + std::to_string(tpn), jac_result,
                      dsm::protocol_name(kind), nodes);
      const double jac_s = to_seconds(jac_result.elapsed);

      apps::AspParams asp;
      asp.n = static_cast<int>(cli.get_int("asp-n"));
      asp.threads = nodes * tpn;
      obs.attach(cfg);
      const auto asp_result = apps::asp_parallel(cfg, asp);
      obs.capture_run("asp threads_per_node=" + std::to_string(tpn), asp_result,
                      dsm::protocol_name(kind), nodes);
      const double asp_s = to_seconds(asp_result.elapsed);

      t.add_row({fmt_u64(static_cast<std::uint64_t>(tpn)), dsm::protocol_name(kind),
                 fmt_double(jac_s, 3), fmt_double(asp_s, 3)});
    }
  }
  t.write_pretty(std::cout);
  obs.finish();
  std::printf(
      "\nreading guide: gains beyond 1 thread/node can only come from hiding\n"
      "communication behind a sibling's compute; once the node CPU saturates,\n"
      "extra threads add barrier traffic and cache-invalidation churn instead.\n");
  return 0;
}
