// Data-race litmus driver (docs/RACES.md).
//
// Runs one litmus program — or the whole table with --all — under a chosen
// cluster/protocol/node count, typically with --race-detect on. Exit status
// with --all --race-detect on: 0 iff every racy program was flagged and
// every race-free program was quiet (the positive half of the oracle
// scripts/race_smoke.sh runs; the figures provide the zero-race half).
#include <cstdio>
#include <cstring>

#include "apps/litmus.hpp"
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace hyp;
  std::string programs = "litmus programs:";
  for (const auto& prog : apps::litmus_programs()) {
    programs += "\n  " + prog.name + (prog.racy ? "  (racy)  " : "  (clean) ") + prog.what;
  }
  Cli cli("litmus — data-race litmus programs for the detector\n" + programs);
  bench::ObsRecorder::add_flags(cli);
  cli.flag_string("program", "", "litmus program to run (see list above)")
      .flag_bool("all", false, "run every program and check detector verdicts")
      .flag_string("cluster", "myri200", "cluster preset (myri200 | sci450)")
      .flag_string("protocol", "java_pf", "DSM protocol (java_ic | java_pf | hybrid)")
      .flag_int("nodes", 4, "cluster size")
      .flag_int("workers", 4, "worker threads")
      .flag_int("reps", 64, "per-worker operations");
  if (!cli.parse(argc, argv)) return 0;

  const std::string proto_name = cli.get_string("protocol");
  if (proto_name != "java_ic" && proto_name != "java_pf" && proto_name != "hybrid") {
    std::fprintf(stderr, "litmus: unknown --protocol '%s' (java_ic | java_pf | hybrid)\n",
                 proto_name.c_str());
    return 2;
  }
  const auto protocol = dsm::protocol_by_name(proto_name);

  apps::LitmusParams params;
  params.workers = cli.get_int("workers");
  params.reps = cli.get_int("reps");

  std::vector<std::string> to_run;
  if (cli.get_bool("all")) {
    for (const auto& prog : apps::litmus_programs()) to_run.push_back(prog.name);
  } else {
    const std::string one = cli.get_string("program");
    if (!apps::litmus_known(one)) {
      std::fprintf(stderr, "litmus: unknown --program '%s' (try --help)\n", one.c_str());
      return 2;
    }
    to_run.push_back(one);
  }

  bench::ObsRecorder obs;
  obs.configure(cli, "litmus");

  int verdict_failures = 0;
  std::printf("# litmus: %s %s nodes=%d workers=%d reps=%d\n", cli.get_string("cluster").c_str(),
              proto_name.c_str(), cli.get_int("nodes"), params.workers, params.reps);
  for (const auto& name : to_run) {
    apps::VmConfig cfg = apps::make_config(cli.get_string("cluster"), protocol,
                                           cli.get_int("nodes"));
    obs.attach(cfg);
    const apps::RunResult r = apps::litmus_run(cfg, name, params);
    const std::uint64_t races = obs.race() != nullptr ? obs.race()->races() : 0;
    obs.capture_run(name, r, proto_name, cli.get_int("nodes"));
    std::printf("%-16s value=%-10.0f elapsed=%.3f us  races=%llu\n", name.c_str(), r.value,
                to_seconds(r.elapsed) * 1e6, static_cast<unsigned long long>(races));
    if (cli.get_bool("all") && obs.race() != nullptr) {
      bool expect_racy = false;
      for (const auto& prog : apps::litmus_programs()) {
        if (prog.name == name) expect_racy = prog.racy;
      }
      if (expect_racy != (races > 0)) {
        std::fprintf(stderr, "litmus: VERDICT MISMATCH: %s expected %s, detected %llu races\n",
                     name.c_str(), expect_racy ? "races" : "no races",
                     static_cast<unsigned long long>(races));
        ++verdict_failures;
      }
    }
  }
  obs.finish();
  if (verdict_failures != 0) {
    std::fprintf(stderr, "litmus: %d verdict mismatch(es)\n", verdict_failures);
    return 1;
  }
  return 0;
}
