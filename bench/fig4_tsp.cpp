// Figure 4: TSP — java_pf vs. java_ic on both clusters.
// Paper result: java_pf wins with a roughly node-count-independent margin
// (communication is dwarfed by search compute).
#include "apps/tsp.hpp"
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace hyp;
  Cli cli("fig4_tsp — reproduces Figure 4 (17-city branch-and-bound TSP)");
  bench::add_sweep_flags(cli);
  bench::ObsRecorder::add_flags(cli);
  cli.flag_int("cities", 14, "city count (paper: 17; >15 takes very long)")
      .flag_bool("full", false, "use the paper's problem size (slow!)");
  if (!cli.parse(argc, argv)) return 0;

  apps::TspParams params;
  params.cities = cli.get_bool("full") ? 17 : static_cast<int>(cli.get_int("cities"));

  bench::FigureSpec spec;
  spec.id = "fig4";
  spec.title = "TSP: java_pf vs. java_ic";
  spec.workload = std::to_string(params.cities) + "-city branch-and-bound";
  spec.run = [params](const apps::VmConfig& cfg) { return apps::tsp_parallel(cfg, params); };
  bench::ObsRecorder obs;
  obs.configure(cli, "fig4");
  bench::run_figure(spec, bench::sweep_from_cli(cli), &obs);
  return 0;
}
