#include "fig_common.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "common/table.hpp"

namespace hyp::bench {

void add_sweep_flags(Cli& cli) {
  cli.flag_bool("myri", true, "sweep the 200 MHz/Myrinet-BIP cluster (1-12 nodes)")
      .flag_bool("sci", true, "sweep the 450 MHz/SCI-SISCI cluster (1-6 nodes)")
      .flag_int("max-nodes", 0, "cap the node counts (0 = paper sweep)")
      .flag_bool("quick", false, "coarse sweep (nodes 1,4,12 / 1,3,6) for smoke runs")
      .flag_string("plot-dir", "", "write gnuplot <id>.dat/<id>.gp into this directory");
}

SweepOptions sweep_from_cli(const Cli& cli) {
  SweepOptions opts;
  opts.run_myri = cli.get_bool("myri");
  opts.run_sci = cli.get_bool("sci");
  if (cli.get_bool("quick")) {
    opts.myri_nodes = {1, 4, 12};
    opts.sci_nodes = {1, 3, 6};
  }
  opts.plot_dir = cli.get_string("plot-dir");
  const auto cap = cli.get_int("max-nodes");
  if (cap > 0) {
    auto trim = [cap](std::vector<int>& v) {
      std::vector<int> out;
      for (int n : v) {
        if (n <= cap) out.push_back(n);
      }
      v = std::move(out);
    };
    trim(opts.myri_nodes);
    trim(opts.sci_nodes);
  }
  return opts;
}

namespace {

const std::vector<std::string> kCounterColumns = {
    "inline_checks", "page_faults",    "mprotect_calls", "page_fetches",
    "updates_sent",  "invalidations",  "monitor_enters", "messages",
    "message_bytes", "write_log_entries", "diff_words",
};

}  // namespace

std::vector<SweepPoint> run_figure(const FigureSpec& spec, const SweepOptions& opts) {
  std::printf("# %s — %s\n", spec.id.c_str(), spec.title.c_str());
  std::printf("# workload: %s\n", spec.workload.c_str());
  std::printf("# (reproduction of Antoniu & Hatcher, IPDPS'01 JavaPDC; virtual-time simulation)\n\n");

  std::vector<SweepPoint> points;
  auto sweep_cluster = [&](const std::string& cluster, const std::vector<int>& node_counts) {
    for (int nodes : node_counts) {
      for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
        SweepPoint pt;
        pt.cluster = cluster;
        pt.protocol = dsm::protocol_name(kind);
        pt.nodes = nodes;
        pt.result = spec.run(apps::make_config(cluster, kind, nodes, spec.region_bytes));
        points.push_back(std::move(pt));
      }
    }
  };
  if (opts.run_myri) sweep_cluster("myri200", opts.myri_nodes);
  if (opts.run_sci) sweep_cluster("sci450", opts.sci_nodes);

  // --- CSV block ------------------------------------------------------------
  {
    std::vector<std::string> header = {"figure", "cluster", "protocol", "nodes", "seconds",
                                       "value"};
    header.insert(header.end(), kCounterColumns.begin(), kCounterColumns.end());
    Table csv(header);
    for (const auto& pt : points) {
      std::vector<std::string> row = {spec.id,
                                      pt.cluster,
                                      pt.protocol,
                                      fmt_u64(static_cast<std::uint64_t>(pt.nodes)),
                                      fmt_double(to_seconds(pt.result.elapsed), 6),
                                      fmt_double(pt.result.value, 6)};
      const auto counters = pt.result.stats.nonzero();
      for (const auto& name : kCounterColumns) {
        auto it = counters.find(name);
        row.push_back(fmt_u64(it == counters.end() ? 0 : it->second));
      }
      csv.add_row(std::move(row));
    }
    csv.write_csv(std::cout);
    std::printf("\n");
  }

  // --- paper-style series + improvement summary ------------------------------
  for (const std::string& cluster : {std::string("myri200"), std::string("sci450")}) {
    std::map<int, std::map<std::string, double>> by_nodes;
    for (const auto& pt : points) {
      if (pt.cluster == cluster) {
        by_nodes[pt.nodes][pt.protocol] = to_seconds(pt.result.elapsed);
      }
    }
    if (by_nodes.empty()) continue;

    std::printf("%s (%s):\n", cluster.c_str(),
                cluster == "myri200" ? "200 MHz Pentium Pro, Myrinet/BIP"
                                     : "450 MHz Pentium II, SCI/SISCI");
    Table table({"nodes", "java_ic (s)", "java_pf (s)", "pf improvement"});
    double improvement_sum = 0;
    int improvement_count = 0;
    for (const auto& [nodes, series] : by_nodes) {
      const double ic = series.at("java_ic");
      const double pf = series.at("java_pf");
      const double improvement = ic > 0 ? 1.0 - pf / ic : 0.0;
      improvement_sum += improvement;
      ++improvement_count;
      table.add_row({fmt_u64(static_cast<std::uint64_t>(nodes)), fmt_double(ic, 3),
                     fmt_double(pf, 3), fmt_percent(improvement)});
    }
    table.write_pretty(std::cout);
    std::printf("average java_pf improvement on %s: %s\n\n", cluster.c_str(),
                fmt_percent(improvement_sum / improvement_count).c_str());
  }

  // --- optional gnuplot emission --------------------------------------------
  if (!opts.plot_dir.empty()) {
    const std::string dat_path = opts.plot_dir + "/" + spec.id + ".dat";
    const std::string gp_path = opts.plot_dir + "/" + spec.id + ".gp";
    std::ofstream dat(dat_path);
    dat << "# " << spec.id << " — " << spec.title << "\n";
    dat << "# cluster protocol nodes seconds\n";
    for (const auto& pt : points) {
      dat << pt.cluster << " " << pt.protocol << " " << pt.nodes << " "
          << fmt_double(to_seconds(pt.result.elapsed), 6) << "\n";
    }
    std::ofstream gp(gp_path);
    gp << "# gnuplot script replicating the paper's figure axes\n"
       << "set title '" << spec.title << "'\n"
       << "set xlabel 'Number of nodes'\nset ylabel 'Execution time'\n"
       << "set key top right\nset grid\n"
       << "plot \\\n";
    const char* styles[4] = {"lc 1 pt 5", "lc 1 pt 4", "lc 2 pt 7", "lc 2 pt 6"};
    int i = 0;
    for (const char* cl : {"myri200", "sci450"}) {
      for (const char* proto : {"java_ic", "java_pf"}) {
        gp << "  '" << spec.id << ".dat' using 3:(strcol(1) eq '" << cl
           << "' && strcol(2) eq '" << proto << "' ? $4 : 1/0) with linespoints "
           << styles[i] << " title '" << cl << ", " << proto << "'"
           << (i == 3 ? "\n" : ", \\\n");
        ++i;
      }
    }
    std::printf("gnuplot artifacts written: %s, %s\n", dat_path.c_str(), gp_path.c_str());
  }

  return points;
}

}  // namespace hyp::bench
