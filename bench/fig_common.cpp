#include "fig_common.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "common/table.hpp"
#include "obs/perfetto.hpp"

namespace hyp::bench {

// ---------------------------------------------------------------------------
// ObsRecorder

namespace {
// Hottest pages kept per metrics point (plenty to see a false-sharing page
// or a prefetch train without bloating the JSON).
constexpr std::size_t kHeatTopN = 16;
}  // namespace

void ObsRecorder::add_flags(Cli& cli) {
  cli.flag_string("trace-out", "",
                  "write a Perfetto trace_events JSON of the last run to FILE")
      .flag_string("metrics-out", "",
                   "write hyp-metrics-v1 JSON (counters, histograms, page heat, phases) to FILE")
      .flag_int("trace-capacity", 1 << 16,
                "max trace events retained (recording stops and drops are counted beyond)")
      .flag_string("fault-profile", "",
                   "deterministic network fault injection, e.g. "
                   "drop2%,dup1%,reorder5us,seed=7 (docs/FAULTS.md; default off)")
      .flag_int("rpc-dedup-window", -1,
                "receiver-side RPC dedup window size in sequence numbers "
                "(>=1; 0 = unbounded exact dedup; -1 = keep the profile's "
                "dedupwin=N or the default)")
      .flag_bool("trace-stream", false,
                 "stream the trace to --trace-out incrementally (no events "
                 "are ever dropped; covers every attached run)")
      .flag_string("race-detect", "",
                   "vector-clock data-race detection: on|off[,racegran=field|page] "
                   "(docs/RACES.md; default off)")
      .flag_string("race-out", "",
                   "write the race report to FILE (requires --race-detect on)");
}

void ObsRecorder::configure(const Cli& cli, std::string tool) {
  tool_ = std::move(tool);
  trace_path_ = cli.get_string("trace-out");
  metrics_path_ = cli.get_string("metrics-out");
  const std::string fault_spec = cli.get_string("fault-profile");
  if (!fault_spec.empty()) {
    fault_ = cluster::FaultProfile::parse(fault_spec);
  }
  // --rpc-dedup-window overrides the profile's dedupwin=N token. Same
  // validation as the parser: a 0-entry window would disable dedup outright
  // and break at-most-once delivery, so only 0 (= unbounded) and >= 1 are
  // meaningful; the parser rejects an explicit dedupwin=0 and the flag
  // reserves -1 for "no override".
  const int dedup_flag = cli.get_int("rpc-dedup-window");
  if (dedup_flag >= 0) {
    fault_.dedup_window = static_cast<std::uint32_t>(dedup_flag);
  }
  if (fault_.any()) {
    std::printf("# fault profile: %s\n", fault_.to_string().c_str());
  }
  const std::string race_spec = cli.get_string("race-detect");
  if (!race_spec.empty()) {
    race_cfg_ = obs::RaceConfig::parse(race_spec);  // exits 2 on junk
  }
  race_path_ = cli.get_string("race-out");
  if (!race_path_.empty() && !race_cfg_.enabled) {
    std::fprintf(stderr, "obs: --race-out requires --race-detect on\n");
    std::exit(2);
  }
  if (race_cfg_.enabled) {
    race_det_ = std::make_unique<obs::RaceDetector>(race_cfg_);
    std::printf("# race detection: %s\n", race_cfg_.to_string().c_str());
  }
  trace_stream_ = cli.get_bool("trace-stream");
  if (trace_stream_ && !trace_wanted()) {
    std::fprintf(stderr, "obs: --trace-stream requires --trace-out\n");
    std::exit(2);
  }
  if (trace_wanted()) {
    trace_ = std::make_unique<cluster::TraceLog>(
        static_cast<std::size_t>(cli.get_int("trace-capacity")));
    if (trace_stream_) {
      // Open the file up front: batches are appended as they are flushed, so
      // a run larger than --trace-capacity streams instead of dropping.
      stream_out_ = std::make_unique<std::ofstream>(trace_path_);
      if (!*stream_out_) {
        std::fprintf(stderr, "obs: cannot open --trace-out %s\n", trace_path_.c_str());
        std::exit(2);
      }
      stream_writer_ = std::make_unique<obs::PerfettoStreamWriter>(*stream_out_);
      trace_->set_sink([this](const std::vector<cluster::TraceEvent>& batch) {
        stream_writer_->consume(batch);
      });
    }
  }
}

void ObsRecorder::apply_fault(cluster::ClusterParams& params) const {
  if (fault_wanted()) params.fault = fault_;
}

void ObsRecorder::attach(hyperion::VmConfig& cfg) {
  // The fault profile is part of the experiment, not of the observation: it
  // must land in the ClusterParams even when no trace/metrics were requested.
  apply_fault(cfg.cluster);
  // The race detector attaches regardless of trace/metrics: --race-detect
  // with only --race-out is a valid way to run the zero-race oracle.
  if (race_det_ != nullptr) cfg.race = race_det_.get();
  if (!active()) return;
  if (trace_ != nullptr) {
    if (trace_->streaming()) {
      trace_->flush_sink();  // streamed export covers every attached run
    } else {
      trace_->clear();  // the one-shot export is the last attached run
    }
    cfg.trace = trace_.get();
  }
  cfg.heat = &heat_;      // re-initialized by the VM constructor
  cfg.phases = &phases_;  // likewise
}

void ObsRecorder::capture(obs::MetricsPoint mp) {
  if (race_det_ != nullptr) {
    // Per-run tallies (the VM constructor reset the detector at attach);
    // counters land in the metrics JSON, rows in the --race-out report.
    mp.stats.add(Counter::kRacesDetected, race_det_->races());
    mp.stats.add(Counter::kRaceAccessesChecked, race_det_->accesses_checked());
    mp.stats.add(Counter::kRaceBenignSuppressed, race_det_->benign_suppressed());
    mp.stats.add(Counter::kRaceClockMsgs, race_det_->clock_msgs());
    mp.stats.add(Counter::kRaceClockBytes, race_det_->clock_bytes());
    races_total_ += race_det_->races();
    if (!race_path_.empty()) {
      race_report_ << "== run: " << (mp.label.empty() ? mp.cluster : mp.label);
      if (!mp.protocol.empty()) race_report_ << " " << mp.protocol;
      if (mp.nodes >= 0) race_report_ << " nodes=" << mp.nodes;
      race_report_ << " ==\n";
      race_det_->write_report(race_report_);
      race_report_ << "\n";
    }
  }
  if (!active()) return;
  if (heat_.initialized()) obs::fill_heat(mp, heat_, kHeatTopN);
  if (phases_.initialized()) obs::fill_phases(mp, phases_);
  if (trace_ != nullptr) {
    mp.has_trace = true;
    mp.trace_events = trace_->events().size() +
                      (stream_writer_ != nullptr ? stream_writer_->events_written() : 0);
    mp.trace_dropped = trace_->dropped();
    for (int k = 0; k < cluster::kTraceKindCount; ++k) {
      const auto kind = static_cast<cluster::TraceKind>(k);
      if (trace_->dropped(kind) != 0) {
        mp.trace_dropped_by_kind[cluster::trace_kind_name(kind)] = trace_->dropped(kind);
      }
    }
  }
  points_.push_back(std::move(mp));
}

void ObsRecorder::capture_run(const std::string& label, const apps::RunResult& result,
                              const std::string& protocol, int nodes) {
  if (!active() && race_det_ == nullptr) return;
  obs::MetricsPoint mp;
  mp.label = label;
  mp.protocol = protocol;
  mp.nodes = nodes;
  mp.elapsed = result.elapsed;
  mp.value = result.value;
  mp.has_value = true;
  mp.stats = result.stats;
  capture(std::move(mp));
}

void ObsRecorder::capture_run_windowed(const std::string& label,
                                       const apps::RunResult& result,
                                       const std::string& protocol, int nodes,
                                       Time window_start, Time window_end,
                                       std::uint64_t excluded_ops) {
  if (!active() && race_det_ == nullptr) return;
  obs::MetricsPoint mp;
  mp.label = label;
  mp.protocol = protocol;
  mp.nodes = nodes;
  mp.elapsed = result.elapsed;
  mp.value = result.value;
  mp.has_value = true;
  mp.stats = result.stats;
  mp.has_window = true;
  mp.window_start = window_start;
  mp.window_end = window_end;
  mp.window_excluded_ops = excluded_ops;
  capture(std::move(mp));
}

void ObsRecorder::attach_cluster(cluster::Cluster& c, dsm::DsmSystem* d) {
  if (!active()) return;
  if (trace_ != nullptr) {
    trace_->clear();
    c.set_trace(trace_.get());
  }
  phases_.init(c.node_count());
  c.set_phases(&phases_);
  if (d != nullptr) {
    heat_.init(d->layout().total_pages(), d->layout().page_bytes());
    d->set_heat(&heat_);
  } else {
    heat_.init(0, 0);  // drop any heat left over from a previous attachment
  }
}

void ObsRecorder::capture_cluster(const std::string& label, cluster::Cluster& c) {
  if (!active()) return;
  obs::MetricsPoint mp;
  mp.label = label;
  mp.nodes = c.node_count();
  mp.elapsed = c.engine().now();
  mp.stats = c.total_stats();
  capture(std::move(mp));
}

void ObsRecorder::finish() {
  if (finished_) return;
  finished_ = true;
  if (metrics_wanted()) {
    std::ofstream out(metrics_path_);
    if (!out) {
      std::fprintf(stderr, "obs: cannot open --metrics-out %s\n", metrics_path_.c_str());
    } else {
      obs::write_metrics_json(out, tool_, points_);
      std::printf("metrics written: %s (%zu points)\n", metrics_path_.c_str(), points_.size());
    }
  }
  if (trace_wanted() && trace_stream_) {
    trace_->flush_sink();
    stream_writer_->finish(*trace_);
    stream_out_->flush();
    std::printf("trace streamed: %s (%llu events, %llu dropped)\n", trace_path_.c_str(),
                static_cast<unsigned long long>(stream_writer_->events_written()),
                static_cast<unsigned long long>(trace_->dropped()));
  } else if (trace_wanted()) {
    std::ofstream out(trace_path_);
    if (!out) {
      std::fprintf(stderr, "obs: cannot open --trace-out %s\n", trace_path_.c_str());
    } else if (trace_ != nullptr) {
      obs::write_perfetto_trace(out, *trace_);
      // A saturated trace must never pass for a quiet run: always say what
      // was dropped (the JSON carries the same numbers in otherData).
      std::printf("trace written: %s (%zu events, %llu dropped)\n", trace_path_.c_str(),
                  trace_->events().size(),
                  static_cast<unsigned long long>(trace_->dropped()));
    }
  }
  if (!race_path_.empty()) {
    std::ofstream out(race_path_);
    if (!out) {
      std::fprintf(stderr, "obs: cannot open --race-out %s\n", race_path_.c_str());
    } else {
      out << race_report_.str();
      std::printf("race report written: %s (%llu races)\n", race_path_.c_str(),
                  static_cast<unsigned long long>(races_total_));
    }
  }
}

void add_sweep_flags(Cli& cli) {
  cli.flag_bool("myri", true, "sweep the 200 MHz/Myrinet-BIP cluster (1-12 nodes)")
      .flag_bool("sci", true, "sweep the 450 MHz/SCI-SISCI cluster (1-6 nodes)")
      .flag_int("max-nodes", 0, "cap the node counts (0 = paper sweep)")
      .flag_bool("quick", false, "coarse sweep (nodes 1,4,12 / 1,3,6) for smoke runs")
      .flag_string("plot-dir", "", "write gnuplot <id>.dat/<id>.gp into this directory");
}

SweepOptions sweep_from_cli(const Cli& cli) {
  SweepOptions opts;
  opts.run_myri = cli.get_bool("myri");
  opts.run_sci = cli.get_bool("sci");
  if (cli.get_bool("quick")) {
    opts.myri_nodes = {1, 4, 12};
    opts.sci_nodes = {1, 3, 6};
  }
  opts.plot_dir = cli.get_string("plot-dir");
  const auto cap = cli.get_int("max-nodes");
  if (cap > 0) {
    auto trim = [cap](std::vector<int>& v) {
      std::vector<int> out;
      for (int n : v) {
        if (n <= cap) out.push_back(n);
      }
      v = std::move(out);
    };
    trim(opts.myri_nodes);
    trim(opts.sci_nodes);
  }
  return opts;
}

namespace {

const std::vector<std::string> kCounterColumns = {
    "inline_checks", "page_faults",    "mprotect_calls", "page_fetches",
    "updates_sent",  "invalidations",  "monitor_enters", "messages",
    "message_bytes", "write_log_entries", "diff_words",
};

}  // namespace

std::vector<SweepPoint> run_figure(const FigureSpec& spec, const SweepOptions& opts,
                                   ObsRecorder* obs) {
  std::printf("# %s — %s\n", spec.id.c_str(), spec.title.c_str());
  std::printf("# workload: %s\n", spec.workload.c_str());
  std::printf("# (reproduction of Antoniu & Hatcher, IPDPS'01 JavaPDC; virtual-time simulation)\n\n");

  std::vector<SweepPoint> points;
  auto sweep_cluster = [&](const std::string& cluster, const std::vector<int>& node_counts) {
    for (int nodes : node_counts) {
      for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf,
                        dsm::ProtocolKind::kHybrid}) {
        SweepPoint pt;
        pt.cluster = cluster;
        pt.protocol = dsm::protocol_name(kind);
        pt.nodes = nodes;
        apps::VmConfig cfg = apps::make_config(cluster, kind, nodes, spec.region_bytes);
        if (obs != nullptr) obs->attach(cfg);
        pt.result = spec.run(cfg);
        if (obs != nullptr) {
          obs::MetricsPoint mp;
          mp.cluster = pt.cluster;
          mp.protocol = pt.protocol;
          mp.nodes = pt.nodes;
          mp.elapsed = pt.result.elapsed;
          mp.value = pt.result.value;
          mp.has_value = true;
          mp.stats = pt.result.stats;
          obs->capture(std::move(mp));
        }
        points.push_back(std::move(pt));
      }
    }
  };
  if (opts.run_myri) sweep_cluster("myri200", opts.myri_nodes);
  if (opts.run_sci) sweep_cluster("sci450", opts.sci_nodes);

  // --- CSV block ------------------------------------------------------------
  {
    std::vector<std::string> header = {"figure", "cluster", "protocol", "nodes", "seconds",
                                       "value"};
    header.insert(header.end(), kCounterColumns.begin(), kCounterColumns.end());
    Table csv(header);
    for (const auto& pt : points) {
      std::vector<std::string> row = {spec.id,
                                      pt.cluster,
                                      pt.protocol,
                                      fmt_u64(static_cast<std::uint64_t>(pt.nodes)),
                                      fmt_double(to_seconds(pt.result.elapsed), 6),
                                      fmt_double(pt.result.value, 6)};
      const auto counters = pt.result.stats.nonzero();
      for (const auto& name : kCounterColumns) {
        auto it = counters.find(name);
        row.push_back(fmt_u64(it == counters.end() ? 0 : it->second));
      }
      csv.add_row(std::move(row));
    }
    csv.write_csv(std::cout);
    std::printf("\n");
  }

  // --- paper-style series + improvement summary ------------------------------
  for (const std::string& cluster : {std::string("myri200"), std::string("sci450")}) {
    std::map<int, std::map<std::string, double>> by_nodes;
    for (const auto& pt : points) {
      if (pt.cluster == cluster) {
        by_nodes[pt.nodes][pt.protocol] = to_seconds(pt.result.elapsed);
      }
    }
    if (by_nodes.empty()) continue;

    std::printf("%s (%s):\n", cluster.c_str(),
                cluster == "myri200" ? "200 MHz Pentium Pro, Myrinet/BIP"
                                     : "450 MHz Pentium II, SCI/SISCI");
    Table table({"nodes", "java_ic (s)", "java_pf (s)", "hybrid (s)", "pf improvement",
                 "hybrid vs best"});
    double improvement_sum = 0;
    int improvement_count = 0;
    for (const auto& [nodes, series] : by_nodes) {
      const double ic = series.at("java_ic");
      const double pf = series.at("java_pf");
      const double improvement = ic > 0 ? 1.0 - pf / ic : 0.0;
      improvement_sum += improvement;
      ++improvement_count;
      const auto hy_it = series.find("hybrid");
      std::string hy_col = "-";
      std::string hy_gain = "-";
      if (hy_it != series.end()) {
        const double best = ic < pf ? ic : pf;
        hy_col = fmt_double(hy_it->second, 3);
        hy_gain = fmt_percent(best > 0 ? 1.0 - hy_it->second / best : 0.0);
      }
      table.add_row({fmt_u64(static_cast<std::uint64_t>(nodes)), fmt_double(ic, 3),
                     fmt_double(pf, 3), std::move(hy_col), fmt_percent(improvement),
                     std::move(hy_gain)});
    }
    table.write_pretty(std::cout);
    std::printf("average java_pf improvement on %s: %s\n\n", cluster.c_str(),
                fmt_percent(improvement_sum / improvement_count).c_str());
  }

  // --- optional gnuplot emission --------------------------------------------
  if (!opts.plot_dir.empty()) {
    const std::string dat_path = opts.plot_dir + "/" + spec.id + ".dat";
    const std::string gp_path = opts.plot_dir + "/" + spec.id + ".gp";
    std::ofstream dat(dat_path);
    dat << "# " << spec.id << " — " << spec.title << "\n";
    dat << "# cluster protocol nodes seconds\n";
    for (const auto& pt : points) {
      dat << pt.cluster << " " << pt.protocol << " " << pt.nodes << " "
          << fmt_double(to_seconds(pt.result.elapsed), 6) << "\n";
    }
    std::ofstream gp(gp_path);
    gp << "# gnuplot script replicating the paper's figure axes\n"
       << "set title '" << spec.title << "'\n"
       << "set xlabel 'Number of nodes'\nset ylabel 'Execution time'\n"
       << "set key top right\nset grid\n"
       << "plot \\\n";
    const char* styles[6] = {"lc 1 pt 5", "lc 1 pt 4", "lc 1 pt 3",
                             "lc 2 pt 7", "lc 2 pt 6", "lc 2 pt 2"};
    int i = 0;
    for (const char* cl : {"myri200", "sci450"}) {
      for (const char* proto : {"java_ic", "java_pf", "hybrid"}) {
        gp << "  '" << spec.id << ".dat' using 3:(strcol(1) eq '" << cl
           << "' && strcol(2) eq '" << proto << "' ? $4 : 1/0) with linespoints "
           << styles[i] << " title '" << cl << ", " << proto << "'"
           << (i == 5 ? "\n" : ", \\\n");
        ++i;
      }
    }
    std::printf("gnuplot artifacts written: %s, %s\n", dat_path.c_str(), gp_path.c_str());
  }

  if (obs != nullptr) obs->finish();
  return points;
}

}  // namespace hyp::bench
