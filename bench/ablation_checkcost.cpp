// Ablation: the §4.3 claim that the java_pf improvement tracks "the ratio of
// the cost of the inline check ... to the cost of the rest of the
// computation".
//
// Sweeps the modeled check cost (cycles) on the 200 MHz/Myrinet cluster and
// reports the java_pf improvement for ASP (cheap integer inner loop, 3
// checks) and Jacobi (fp inner loop, 5 checks). Expectation: improvement is
// ~0 at 0-cycle checks, grows monotonically with check cost, and ASP's curve
// sits above Jacobi's at every nonzero cost — the paper's explanation of why
// ASP gains 64% and Jacobi 38%.
#include <cstdio>
#include <iostream>

#include "apps/asp.hpp"
#include "apps/jacobi.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"

using namespace hyp;

namespace {

double improvement(double ic_seconds, double pf_seconds) {
  return ic_seconds > 0 ? 1.0 - pf_seconds / ic_seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_checkcost — pf improvement vs modeled in-line check cost");
  cli.flag_int("nodes", 4, "cluster nodes")
      .flag_int("asp-n", 256, "ASP graph size")
      .flag_int("jacobi-n", 256, "Jacobi mesh edge")
      .flag_int("jacobi-steps", 30, "Jacobi steps");
  bench::ObsRecorder::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsRecorder obs;
  obs.configure(cli, "ablation_checkcost");

  const int nodes = static_cast<int>(cli.get_int("nodes"));
  std::printf("# ablation_checkcost — §4.3: improvement tracks check/compute ratio\n");
  std::printf("# myri200 cluster, %d nodes; java_pf improvement over java_ic\n\n", nodes);

  Table t({"check cycles", "ASP improvement", "Jacobi improvement"});
  for (std::uint64_t cycles : {0ull, 2ull, 5ull, 10ull, 20ull, 40ull}) {
    auto cluster = cluster::ClusterParams::myrinet200();
    cluster.cpu.check_cycles = cycles;

    auto run_pair = [&](const char* app, auto&& runner) {
      hyperion::VmConfig cfg;
      cfg.cluster = cluster;
      cfg.nodes = nodes;
      cfg.region_bytes = std::size_t{128} << 20;
      const std::string label = std::string(app) + " check_cycles=" + std::to_string(cycles);
      cfg.protocol = dsm::ProtocolKind::kJavaIc;
      obs.attach(cfg);
      const auto ic_result = runner(cfg);
      obs.capture_run(label, ic_result, "java_ic", nodes);
      cfg.protocol = dsm::ProtocolKind::kJavaPf;
      obs.attach(cfg);
      const auto pf_result = runner(cfg);
      obs.capture_run(label, pf_result, "java_pf", nodes);
      return improvement(to_seconds(ic_result.elapsed), to_seconds(pf_result.elapsed));
    };

    apps::AspParams asp;
    asp.n = static_cast<int>(cli.get_int("asp-n"));
    apps::JacobiParams jac;
    jac.n = static_cast<int>(cli.get_int("jacobi-n"));
    jac.steps = static_cast<int>(cli.get_int("jacobi-steps"));

    const double asp_gain = run_pair(
        "asp", [&](const hyperion::VmConfig& cfg) { return apps::asp_parallel(cfg, asp); });
    const double jac_gain = run_pair(
        "jacobi", [&](const hyperion::VmConfig& cfg) { return apps::jacobi_parallel(cfg, jac); });
    t.add_row({fmt_u64(cycles), fmt_percent(asp_gain), fmt_percent(jac_gain)});
  }
  t.write_pretty(std::cout);
  obs.finish();
  std::printf(
      "\nexpected shape: ~0%% at zero-cost checks; monotonic growth; ASP above\n"
      "Jacobi (3 checks over a ~17-cycle loop vs 5 checks over ~80 fp cycles).\n");
  return 0;
}
