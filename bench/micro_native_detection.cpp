// §4.2 on today's hardware: the real cost of the two detection mechanisms.
//
// The paper reports: "The cost of a page fault goes from 12 microseconds on
// the SCI cluster machines to 22 microseconds on the Myrinet cluster
// machines." This benchmark measures, with the native backend's actual
// SIGSEGV handler and mprotect calls:
//   * a full java_pf detection round trip (trap -> handler -> page install
//     -> mprotect -> resume),
//   * a bare mprotect(4 KiB) call,
//   * one java_ic in-line locality check (hit),
// and prints them next to the paper's constants. Absolute values shift with
// twenty-five years of hardware; the *ratio* (a fault costs thousands of
// checks) is the invariant behind Figures 1-5.
#include <benchmark/benchmark.h>
#include <sys/mman.h>

#include <cstdio>

#include "native/native_dsm.hpp"

namespace {

using namespace hyp;
using namespace hyp::native;

constexpr std::size_t kRegion = std::size_t{16} << 20;

// Full detection round trip: re-protect the cached page, then touch it.
void BM_PfFaultRoundTrip(benchmark::State& state) {
  NativeDsm dsm(2, kRegion, Protocol::kJavaPf);
  NativeCtx ctx = dsm.make_ctx(1);
  const Gva a = dsm.alloc(0, 8);  // homed on node 0, accessed from node 1
  dsm.poke_home<std::int64_t>(a, 7);
  for (auto _ : state) {
    state.PauseTiming();
    dsm.invalidate_cache(ctx);  // mprotect(PROT_NONE) + drop replica
    state.ResumeTiming();
    benchmark::DoNotOptimize(ctx.get<std::int64_t>(a));  // SIGSEGV -> fetch
  }
  state.SetLabel("trap + handler + page copy + mprotect + resume");
}
BENCHMARK(BM_PfFaultRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_MprotectPage(benchmark::State& state) {
  void* page = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  int prot = PROT_NONE;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mprotect(page, 4096, prot));
    prot = (prot == PROT_NONE) ? PROT_READ | PROT_WRITE : PROT_NONE;
  }
  munmap(page, 4096);
  state.SetLabel("one mprotect(4 KiB) syscall");
}
BENCHMARK(BM_MprotectPage);

void BM_IcCheckHit(benchmark::State& state) {
  NativeDsm dsm(2, kRegion, Protocol::kJavaIc);
  NativeCtx ctx = dsm.make_ctx(1);
  const Gva a = dsm.alloc(0, 8);
  (void)ctx.get<std::int64_t>(a);  // warm: page cached
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.get<std::int64_t>(a));
  }
  state.SetLabel("java_ic locality check + load (cache hit)");
}
BENCHMARK(BM_IcCheckHit);

void BM_PfPlainLoadHit(benchmark::State& state) {
  NativeDsm dsm(2, kRegion, Protocol::kJavaPf);
  NativeCtx ctx = dsm.make_ctx(1);
  const Gva a = dsm.alloc(0, 8);
  (void)ctx.get<std::int64_t>(a);  // warm: page open
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.get<std::int64_t>(a));
  }
  state.SetLabel("java_pf bare load (MMU does the check for free)");
}
BENCHMARK(BM_PfPlainLoadHit);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "# micro_native_detection — real access-detection costs (paper §4.2)\n"
      "# paper constants: page fault = 22 us (200 MHz/Myrinet), 12 us (450 MHz/SCI);\n"
      "# the in-line check cost is a few CPU cycles. Compare the measured\n"
      "# BM_PfFaultRoundTrip / BM_IcCheckHit ratio with 22us / 50ns ~ 440x.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
