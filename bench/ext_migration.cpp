// Extension: thread migration (the paper's §5 plan: "experiment with other
// mechanisms to implement Java consistency, including thread migration").
//
// Quantifies PM2's compute-to-data trade-off on the simulated clusters: a
// thread must process a data block homed on another node. It can either
// pull the pages to itself (the DSM default) or migrate to the data and
// compute locally, paying one thread-state transfer. Reported: both times
// across block sizes, with the crossover where migration starts winning.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

using namespace hyp;

namespace {

Time run_walk(const std::string& cluster, dsm::ProtocolKind kind, int cells, bool migrate,
              int passes, bench::ObsRecorder& obs) {
  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::by_name(cluster);
  cfg.nodes = 2;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{128} << 20;
  obs.attach(cfg);
  hyperion::HyperionVM vm(cfg);
  Time elapsed = 0;
  dsm::with_policy(kind, [&](auto policy) {
    using P = decltype(policy);
    vm.run_main([&](hyperion::JavaEnv& main) {
      auto t = main.start_thread("walker", [&, migrate](hyperion::JavaEnv& env) {
        hyperion::Mem<P> mem(env.ctx());
        env.migrate_to(1);  // build the block on node 1
        auto data = env.new_array<std::int64_t>(cells);
        for (int i = 0; i < cells; ++i) mem.aput(data, i, static_cast<std::int64_t>(i));
        env.migrate_to(0);
        const Time begin = env.now();
        if (migrate) env.migrate_to(1);
        std::int64_t acc = 0;
        for (int pass = 0; pass < passes; ++pass) {
          for (int i = 0; i < cells; ++i) {
            acc += mem.aget(data, i);
            env.charge_cycles(8);
          }
        }
        (void)acc;
        env.ctx().clock.flush();
        elapsed = env.now() - begin;
      });
      main.join(t);
    });
  });
  apps::RunResult rr;
  rr.elapsed = vm.elapsed();
  rr.value = to_seconds(elapsed);
  rr.stats = vm.stats();
  obs.capture_run(std::string(migrate ? "migrate" : "remote") + " cells=" +
                      std::to_string(cells),
                  rr, dsm::protocol_name(kind), cfg.nodes);
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ext_migration — compute-to-data via PM2-style thread migration");
  cli.flag_string("cluster", "myri200", "myri200 or sci450")
      .flag_string("protocol", "java_pf", "java_ic or java_pf")
      .flag_int("passes", 1, "walks over the block per measurement");
  bench::ObsRecorder::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsRecorder obs;
  obs.configure(cli, "ext_migration");

  const auto cluster = cli.get_string("cluster");
  const auto kind = dsm::protocol_by_name(cli.get_string("protocol"));
  const int passes = static_cast<int>(cli.get_int("passes"));

  std::printf("# ext_migration — move the pages or move the thread? (%s, %s)\n",
              cluster.c_str(), dsm::protocol_name(kind));
  std::printf("# thread state: 8 KiB; data homed on the other node\n\n");

  Table t({"block bytes", "remote walk (ms)", "migrate+walk (ms)", "winner"});
  for (int cells : {1024, 4096, 16384, 65536, 262144}) {
    const double remote = to_seconds(run_walk(cluster, kind, cells, false, passes, obs)) * 1e3;
    const double migrated = to_seconds(run_walk(cluster, kind, cells, true, passes, obs)) * 1e3;
    t.add_row({fmt_u64(static_cast<std::uint64_t>(cells) * 8), fmt_double(remote, 3),
               fmt_double(migrated, 3), migrated < remote ? "migrate" : "remote"});
  }
  t.write_pretty(std::cout);
  obs.finish();
  std::printf(
      "\nexpected shape: pulling pages costs per-page transfers that grow with\n"
      "the block; migration costs one 8 KiB state transfer plus local reads —\n"
      "it wins for every block larger than the thread state.\n");
  return 0;
}
