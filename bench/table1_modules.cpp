// Table 1: Hyperion's runtime internal structure.
//
// The paper's Table 1 is the module inventory of the runtime. This binary
// prints the reproduction's mapping and performs a live self-check: it boots
// a VM on each preset and exercises every subsystem once (thread creation +
// placement, RPC, DSM fetch/flush, monitor enter/exit, Java API barrier).
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

namespace {

using namespace hyp;

bool self_check(const cluster::ClusterParams& params, dsm::ProtocolKind kind) {
  hyperion::VmConfig cfg;
  cfg.cluster = params;
  cfg.nodes = 3;
  cfg.protocol = kind;
  cfg.region_bytes = std::size_t{16} << 20;
  hyperion::HyperionVM vm(cfg);
  bool ok = true;
  vm.run_main([&](hyperion::JavaEnv& main) {
    auto cell = main.new_cell<std::int64_t>(0);
    auto barrier = hyperion::japi::JBarrier::create(main, 3);
    std::vector<hyperion::JThread> ts;
    for (int w = 0; w < 3; ++w) {
      ts.push_back(main.start_thread("check" + std::to_string(w), [=](hyperion::JavaEnv& env) {
        dsm::with_policy(env.vm().protocol(), [&](auto policy) {
          using P = decltype(policy);
          hyperion::Mem<P> mem(env.ctx());
          env.synchronized(cell.addr, [&] { mem.put(cell, mem.get(cell) + 1); });
          barrier.template await<P>(env);
        });
      }));
    }
    for (auto& t : ts) main.join(t);
    dsm::with_policy(vm.protocol(), [&](auto policy) {
      using P = decltype(policy);
      hyperion::Mem<P> mem(main.ctx());
      ok = ok && mem.get(cell) == 3;
    });
  });
  ok = ok && vm.stats().get(Counter::kMonitorEnters) > 0;
  ok = ok && vm.stats().get(Counter::kRemoteThreadSpawns) > 0;
  return ok;
}

}  // namespace

int main() {
  std::printf("# table1 — Hyperion's runtime: internal structure (paper Table 1)\n\n");

  hyp::Table t({"module", "paper role", "implementation"});
  t.add_row({"Threads subsystem",
             "Java thread creation/synchronization mapped to PM2 (Marcel)",
             "sim/engine (fibers) + hyperion/vm start_thread/join"});
  t.add_row({"Communication subsystem",
             "message handlers asynchronously invoked on the receiver (RPCs)",
             "cluster/cluster send/call/reply with latency+bandwidth model"});
  t.add_row({"Memory subsystem",
             "single shared address space under the Java Memory Model",
             "dsm/* (java_ic and java_pf over the DSM-PM2-like layer)"});
  t.add_row({"Load balancer", "round-robin distribution of new threads",
             "hyperion/load_balancer (RoundRobinBalancer, pluggable)"});
  t.add_row({"Java API subsystem", "native methods of the JDK 1.1 API subset",
             "hyperion/japi (System.arraycopy, currentTimeMillis, barrier)"});
  t.write_pretty(std::cout);

  std::printf("\nself-check (boot VM, exercise every subsystem):\n");
  bool all_ok = true;
  for (const auto& params :
       {hyp::cluster::ClusterParams::myrinet200(), hyp::cluster::ClusterParams::sci450()}) {
    for (auto kind : {hyp::dsm::ProtocolKind::kJavaIc, hyp::dsm::ProtocolKind::kJavaPf}) {
      const bool ok = self_check(params, kind);
      all_ok = all_ok && ok;
      std::printf("  %-8s %-8s %s\n", params.name.c_str(), hyp::dsm::protocol_name(kind),
                  ok ? "OK" : "FAILED");
    }
  }
  std::printf("%s\n", all_ok ? "\nall subsystems operational" : "\nSELF-CHECK FAILED");
  return all_ok ? 0 : 1;
}
