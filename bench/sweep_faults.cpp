// sweep_faults: answer stability and retry-latency under injected faults.
//
// Three sweeps over the Pi benchmark (monitor-guarded global accumulator —
// the simplest workload that exercises both DSM updates and remote monitor
// RPCs):
//
//   1. drop-rate sweep — the answer must match the fault-free baseline at
//      every drop rate (the reliable transport hides loss; only timing may
//      move). One experiment point per (protocol, drop rate).
//   2. rto sweep — at a fixed drop rate, vary the initial retransmit timeout
//      and capture the per-point retry-latency histogram
//      (retry_latency_ps in the metrics JSON): the paper-style trade-off
//      between eager retransmits (more duplicate traffic) and patient ones
//      (longer stalls behind each loss).
//   3. replicas sweep — a fixed mid-run kill-and-recover, varying the chain
//      backup depth K (docs/RECOVERY.md): checkpoint traffic grows with K
//      (every zone streams to K backups) while the recovery overhead — the
//      virtual time the crash costs over the fault-free baseline — stays a
//      property of the crash window, not of K.
//   4. partition sweep — a fixed split window, varying the group topology
//      (docs/PARTITIONS.md): a minority-isolated home promotes on the
//      majority side, an even split parks both sides, and either way the
//      answers must match the fault-free baseline exactly. The table shows
//      the partition drops, kNoQuorum holds, epoch-fence rejects and quorum
//      reads each topology produced.
//
// Every point lands in the hyp-metrics-v1 JSON (--metrics-out), so two runs
// are diffable with scripts/compare_metrics.py, e.g.
//
//   sweep_faults --metrics-out a.json && sweep_faults --metrics-out b.json
//   scripts/compare_metrics.py a.json b.json          # bit-stable faults
//
// Exit code: 0 when every faulty answer equals its fault-free baseline,
// 1 otherwise (the stability table shows which point diverged).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/pi.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"

namespace {

using namespace hyp;

// "0.5,1,2" -> {0.5, 1.0, 2.0}; panics (exit) on garbage.
std::vector<double> parse_list(const std::string& spec, const char* flag) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || v < 0) {
      std::fprintf(stderr, "sweep_faults: bad --%s entry '%s'\n", flag, tok.c_str());
      std::exit(2);
    }
    out.push_back(v);
    pos = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "sweep_faults: --%s must name at least one value\n", flag);
    std::exit(2);
  }
  return out;
}

struct Point {
  std::string label;
  std::string protocol;
  double value = 0;
  double baseline = 0;
  Time elapsed = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retry_count = 0;  // retry-latency histogram entries
  Time retry_sum = 0;             // and their total wait
};

// One row of the replicas sweep (kill-and-recover with K chain backups).
struct RecoveryPoint {
  std::string label;
  std::string protocol;
  double value = 0;
  double baseline = 0;
  Time elapsed = 0;
  Time base_elapsed = 0;  // fault-free run; overhead = elapsed - base_elapsed
  std::uint64_t promotions = 0;
  std::uint64_t ckpt_msgs = 0;
  std::uint64_t ckpt_bytes = 0;
};

// One row of the partition sweep (split-brain topology under a fixed window).
struct PartitionPoint {
  std::string label;
  std::string protocol;
  double value = 0;
  double baseline = 0;
  Time elapsed = 0;
  Time base_elapsed = 0;
  std::uint64_t drops = 0;        // packets that died on a severed link
  std::uint64_t holds = 0;        // kNoQuorum parks on the minority side
  std::uint64_t fenced = 0;       // epoch-fenced stale requests/replies
  std::uint64_t quorum_reads = 0; // suspected-home reads served by backups
  std::uint64_t promotions = 0;
};

// "2|0.1.3,0.1|2.3" -> the individual a|b group specs (the specs themselves
// contain no commas, so the flag list splits cleanly).
std::vector<std::string> split_specs(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "sweep_faults — answer stability vs. drop rate and retry latency vs. "
      "rto under the deterministic fault injector (docs/FAULTS.md)");
  bench::ObsRecorder::add_flags(cli);
  cli.flag_string("cluster", "myri200", "cluster preset (myri200 or sci450)")
      .flag_int("nodes", 4, "cluster size for every point")
      .flag_int("intervals", 200'000, "Pi Riemann intervals per run")
      // Pi exchanges only a few dozen messages per run, so sub-percent rates
      // rarely hit anything; the defaults are chosen to actually exercise the
      // retransmit path at the default problem size.
      .flag_string("drops", "2,5,10,20", "drop rates to sweep, in percent")
      .flag_string("rtos", "100,200,500", "initial rto values to sweep, in us")
      .flag_double("rto-drop", 10.0, "drop rate (percent) held fixed for the rto sweep")
      .flag_string("replicas", "1,2,3", "chain backup depths K for the recovery sweep")
      .flag_string("crash", "crash2@3ms+2ms",
                   "kill-and-recover window held fixed for the replicas sweep")
      .flag_string("partition", "2|0.1.3,0.1|2.3",
                   "partition group topologies to sweep (a|b specs, "
                   "comma-separated; empty disables the partition sweep)")
      .flag_string("partition-window", "3ms+2ms",
                   "split window held fixed for the partition sweep")
      .flag_int("seed", 7, "fault-injector seed shared by every faulty point");
  if (!cli.parse(argc, argv)) return 0;

  const std::string cluster = cli.get_string("cluster");
  const int nodes = cli.get_int("nodes");
  apps::PiParams pi;
  pi.intervals = cli.get_int("intervals");
  const auto drops = parse_list(cli.get_string("drops"), "drops");
  const auto rtos = parse_list(cli.get_string("rtos"), "rtos");
  const auto replicas = parse_list(cli.get_string("replicas"), "replicas");
  for (double k : replicas) {
    if (k < 1 || k != static_cast<double>(static_cast<std::uint32_t>(k))) {
      std::fprintf(stderr, "sweep_faults: --replicas entries must be integers >= 1\n");
      return 2;
    }
  }
  const auto partitions = split_specs(cli.get_string("partition"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  bench::ObsRecorder obs;
  obs.configure(cli, "sweep_faults");

  std::printf("# sweep_faults — %s, %d nodes, %" PRId64 " Pi intervals, seed=%" PRIu64 "\n\n",
              cluster.c_str(), nodes, static_cast<std::int64_t>(pi.intervals), seed);

  // One run; the fault profile is the experiment variable. The recorder's
  // own --fault-profile (if any) seeds the profile each point starts from,
  // so chaos ingredients (dup/reorder/dedupwin) can be layered underneath.
  auto run_point = [&](dsm::ProtocolKind kind, const cluster::FaultProfile& fault,
                       const std::string& label) {
    apps::VmConfig cfg = apps::make_config(cluster, kind, nodes);
    obs.attach(cfg);          // trace/heat/phases (+ recorder's base profile)
    cfg.cluster.fault = fault;  // the sweep variable wins
    const apps::RunResult r = apps::pi_parallel(cfg, pi);
    obs.capture_run(label, r, dsm::protocol_name(kind), nodes);
    return r;
  };

  auto fault_for = [&](double drop_pct, Time rto) {
    cluster::FaultProfile f = obs.fault();  // base ingredients from the flag
    f.drop_ppm = static_cast<std::uint32_t>(drop_pct * 10'000.0 + 0.5);
    f.seed = seed;
    if (rto != 0) f.rto_initial = rto;
    return f;
  };

  std::vector<Point> points;
  std::vector<RecoveryPoint> recovery_points;
  std::vector<PartitionPoint> partition_points;
  bool stable = true;
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf,
                    dsm::ProtocolKind::kHybrid}) {
    const std::string proto = dsm::protocol_name(kind);
    const apps::RunResult base =
        run_point(kind, cluster::FaultProfile{}, "baseline/" + proto);

    auto record = [&](const apps::RunResult& r, const std::string& label) {
      Point p;
      p.label = label;
      p.protocol = proto;
      p.value = r.value;
      p.baseline = base.value;
      p.elapsed = r.elapsed;
      const auto counters = r.stats.nonzero();
      auto cnt = [&](const char* name) {
        auto it = counters.find(name);
        return it == counters.end() ? std::uint64_t{0} : it->second;
      };
      p.retransmits = cnt("retransmits");
      p.timeouts = cnt("rpc_timeouts");
      const auto& h = r.stats.hist(Hist::kRetryLatency);
      p.retry_count = h.count();
      p.retry_sum = static_cast<Time>(h.sum());
      stable = stable && (p.value == p.baseline);
      points.push_back(std::move(p));
    };

    // --- sweep 1: answer stability vs. drop rate ---------------------------
    for (double d : drops) {
      char label[64];
      std::snprintf(label, sizeof(label), "drop%g%%", d);
      record(run_point(kind, fault_for(d, 0), label), label);
    }
    // --- sweep 2: retry latency vs. rto ------------------------------------
    for (double rto_us : rtos) {
      const Time rto = static_cast<Time>(rto_us * kMicrosecond);
      char label[64];
      std::snprintf(label, sizeof(label), "drop%g%%/rto%gus", cli.get_double("rto-drop"),
                    rto_us);
      record(run_point(kind, fault_for(cli.get_double("rto-drop"), rto), label), label);
    }
    // --- sweep 3: kill-and-recover vs. chain backup depth K ----------------
    // The crash window is held fixed; K is the variable. Each point parses a
    // fresh profile (the chaos ingredients of the recorder's base profile
    // would perturb the recovery timing this sweep is isolating).
    for (double k : replicas) {
      char spec[128];
      std::snprintf(spec, sizeof(spec), "replicas=%u,%s,seed=%" PRIu64,
                    static_cast<unsigned>(k), cli.get_string("crash").c_str(), seed);
      char label[64];
      std::snprintf(label, sizeof(label), "recover/K=%u", static_cast<unsigned>(k));
      const apps::RunResult r =
          run_point(kind, cluster::FaultProfile::parse(spec), label);
      RecoveryPoint p;
      p.label = label;
      p.protocol = proto;
      p.value = r.value;
      p.baseline = base.value;
      p.elapsed = r.elapsed;
      p.base_elapsed = base.elapsed;
      const auto counters = r.stats.nonzero();
      auto cnt = [&](const char* name) {
        auto it = counters.find(name);
        return it == counters.end() ? std::uint64_t{0} : it->second;
      };
      p.promotions = cnt("ha_promotions");
      p.ckpt_msgs = cnt("ha_checkpoint_msgs");
      p.ckpt_bytes = cnt("ha_checkpoint_bytes");
      stable = stable && (p.value == p.baseline);
      recovery_points.push_back(std::move(p));
    }
    // --- sweep 4: split-brain topology under a fixed partition window ------
    for (const std::string& groups : partitions) {
      char spec[160];
      std::snprintf(spec, sizeof(spec), "partition@%s:%s,seed=%" PRIu64,
                    cli.get_string("partition-window").c_str(), groups.c_str(), seed);
      const std::string label = "partition/" + groups;
      const apps::RunResult r =
          run_point(kind, cluster::FaultProfile::parse(spec), label);
      PartitionPoint p;
      p.label = label;
      p.protocol = proto;
      p.value = r.value;
      p.baseline = base.value;
      p.elapsed = r.elapsed;
      p.base_elapsed = base.elapsed;
      const auto counters = r.stats.nonzero();
      auto cnt = [&](const char* name) {
        auto it = counters.find(name);
        return it == counters.end() ? std::uint64_t{0} : it->second;
      };
      p.drops = cnt("ha_partition_drops");
      p.holds = cnt("ha_no_quorum_holds");
      p.fenced = cnt("ha_fenced_rejects");
      p.quorum_reads = cnt("ha_quorum_reads");
      p.promotions = cnt("ha_promotions");
      stable = stable && (p.value == p.baseline);
      partition_points.push_back(std::move(p));
    }
  }

  // --- answer-stability table ----------------------------------------------
  Table table({"point", "protocol", "value", "baseline", "stable", "seconds", "retransmits",
               "rpc_timeouts", "retries", "mean retry wait (us)"});
  for (const auto& p : points) {
    const double mean_us =
        p.retry_count == 0 ? 0.0
                           : static_cast<double>(p.retry_sum) /
                                 (static_cast<double>(p.retry_count) * kMicrosecond);
    table.add_row({p.label, p.protocol, fmt_double(p.value, 6), fmt_double(p.baseline, 6),
                   p.value == p.baseline ? "yes" : "NO", fmt_double(to_seconds(p.elapsed), 6),
                   fmt_u64(p.retransmits), fmt_u64(p.timeouts), fmt_u64(p.retry_count),
                   fmt_double(mean_us, 3)});
  }
  table.write_pretty(std::cout);

  // --- recovery-vs-K table ---------------------------------------------------
  Table rec({"point", "protocol", "value", "stable", "seconds", "recovery overhead (s)",
             "promotions", "ckpt msgs", "ckpt bytes"});
  for (const auto& p : recovery_points) {
    const double overhead =
        to_seconds(p.elapsed > p.base_elapsed ? p.elapsed - p.base_elapsed : 0);
    rec.add_row({p.label, p.protocol, fmt_double(p.value, 6),
                 p.value == p.baseline ? "yes" : "NO", fmt_double(to_seconds(p.elapsed), 6),
                 fmt_double(overhead, 6), fmt_u64(p.promotions), fmt_u64(p.ckpt_msgs),
                 fmt_u64(p.ckpt_bytes)});
  }
  std::printf("\n");
  rec.write_pretty(std::cout);

  // --- partition-topology table ----------------------------------------------
  if (!partition_points.empty()) {
    Table part({"point", "protocol", "value", "stable", "seconds", "split overhead (s)",
                "drops", "noquorum holds", "fenced", "quorum reads", "promotions"});
    for (const auto& p : partition_points) {
      const double overhead =
          to_seconds(p.elapsed > p.base_elapsed ? p.elapsed - p.base_elapsed : 0);
      part.add_row({p.label, p.protocol, fmt_double(p.value, 6),
                    p.value == p.baseline ? "yes" : "NO",
                    fmt_double(to_seconds(p.elapsed), 6), fmt_double(overhead, 6),
                    fmt_u64(p.drops), fmt_u64(p.holds), fmt_u64(p.fenced),
                    fmt_u64(p.quorum_reads), fmt_u64(p.promotions)});
    }
    std::printf("\n");
    part.write_pretty(std::cout);
  }

  std::printf("\nanswer stability: %s\n",
              stable ? "every faulty point reproduced its fault-free value"
                     : "DIVERGED — see table");

  obs.finish();
  return stable ? 0 : 1;
}
