// Host-side throughput harness: how fast does the SIMULATOR itself run?
//
// Every paper figure is a sweep of full-cluster simulations, so `--full`
// paper-size runs live or die on host wall-clock throughput — a quantity no
// other bench binary measures (they all report *virtual* time). This harness
// times the four host hot loops the PERFORMANCE.md overhaul targets:
//
//   events/sec    — engine event queue churn (fiber sleep/wakeup storm)
//   accesses/sec  — get() fast path under both policies (hit path only)
//   diff pages/s  — java_pf twin diff + run emission + update shipping
//   e2e seconds   — wall time of a combined Jacobi + ASP simulation load
//
// Results append as one JSON object per line to BENCH_host_perf.json (see
// scripts/bench_host.sh), so the perf trajectory is tracked PR over PR.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/asp.hpp"
#include "apps/jacobi.hpp"
#include "common/cli.hpp"
#include "dsm/access.hpp"
#include "dsm/dsm.hpp"
#include "sim/engine.hpp"

#include <sys/resource.h>

namespace hyp::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Process-lifetime high-water RSS (KB on Linux); gated PR over PR by
// scripts/compare_metrics.py --bench.
std::uint64_t peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

// --- events/sec: N fibers, each sleeping `rounds` times -----------------------

double bench_events_per_sec(int fibers, int rounds) {
  sim::Engine eng;
  for (int f = 0; f < fibers; ++f) {
    eng.spawn("storm" + std::to_string(f), [&eng, rounds] {
      for (int i = 0; i < rounds; ++i) eng.sleep_for(1000);  // 1 ns hops
    });
  }
  const auto t0 = Clock::now();
  eng.run();
  const double dt = seconds_since(t0);
  return static_cast<double>(eng.events_processed()) / dt;
}

// --- accesses/sec: policy fast path on present pages -------------------------

template <typename P>
double bench_accesses_per_sec(dsm::ProtocolKind kind, std::uint64_t accesses) {
  auto params = cluster::ClusterParams::myrinet200();
  cluster::Cluster c(params, 2);
  dsm::DsmSystem dsm(&c, std::size_t{1} << 20, kind);
  double rate = 0;
  c.spawn_thread(1, "reader", [&] {
    auto t = dsm.make_thread(1);
    // Touch a remote page once so the loop below runs entirely on hits, and
    // one home page so both presence classes are exercised.
    const dsm::Gva remote = dsm.alloc(0, 4096, 8);
    const dsm::Gva home = dsm.alloc(1, 4096, 8);
    dsm.load_into_cache(*t, remote);
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < accesses; i += 4) {
      sink += P::template get<std::uint32_t>(*t, remote + (i % 512) * 8);
      sink += P::template get<std::uint32_t>(*t, home + (i % 512) * 8);
      P::template put<std::uint32_t>(*t, home + (i % 512) * 8,
                                     static_cast<std::uint32_t>(i));
      sink += P::template get<std::uint32_t>(*t, remote + ((i + 1) % 512) * 8);
    }
    const double dt = seconds_since(t0);
    rate = static_cast<double>(accesses) / dt;
    if (sink == 0xdeadbeef) std::cerr << "";  // keep the loop alive
    t->clock.flush();
  });
  c.run();
  return rate;
}

// --- diff pages/sec: twin comparison + run emission + shipping ---------------

double bench_diff_pages_per_sec(int pages, int iters) {
  auto params = cluster::ClusterParams::myrinet200();
  cluster::Cluster c(params, 2);
  dsm::DsmSystem dsm(&c, std::size_t{4} << 20, dsm::ProtocolKind::kJavaPf);
  double rate = 0;
  c.spawn_thread(1, "flusher", [&] {
    auto t = dsm.make_thread(1);
    const std::size_t page_bytes = dsm.layout().page_bytes();
    // Cache `pages` remote pages (with twins).
    const dsm::Gva base = dsm.alloc(0, static_cast<std::size_t>(pages) * page_bytes, 8);
    for (int p = 0; p < pages; ++p) {
      dsm.load_into_cache(*t, base + static_cast<std::size_t>(p) * page_bytes);
    }
    const auto t0 = Clock::now();
    for (int it = 0; it < iters; ++it) {
      // Dirty a sparse, alternating word pattern directly in the arena (the
      // twin machinery sees it at flush time, like any java_pf store).
      for (int p = 0; p < pages; ++p) {
        std::byte* pg = t->base + base + static_cast<std::size_t>(p) * page_bytes;
        for (std::size_t w = 0; w < page_bytes / 8; w += 16) {
          std::uint64_t v = static_cast<std::uint64_t>(it + 1) * 1000003u + w;
          std::memcpy(pg + w * 8, &v, 8);
        }
      }
      dsm.update_main_memory(*t);
    }
    const double dt = seconds_since(t0);
    rate = static_cast<double>(pages) * iters / dt;
  });
  c.run();
  return rate;
}

// --- end-to-end: Jacobi + ASP, both protocols --------------------------------

struct E2e {
  double jacobi_ic_s = 0, jacobi_pf_s = 0, asp_ic_s = 0, asp_pf_s = 0;
  double total() const { return jacobi_ic_s + jacobi_pf_s + asp_ic_s + asp_pf_s; }
};

E2e bench_e2e(int jacobi_n, int jacobi_steps, int asp_n) {
  E2e r;
  apps::JacobiParams jp;
  jp.n = jacobi_n;
  jp.steps = jacobi_steps;
  apps::AspParams ap;
  ap.n = asp_n;
  const auto time_run = [&](auto&& fn) {
    const auto t0 = Clock::now();
    fn();
    return seconds_since(t0);
  };
  const auto cfg = [&](dsm::ProtocolKind k) {
    return apps::make_config("myri200", k, 4, std::size_t{64} << 20);
  };
  r.jacobi_ic_s = time_run([&] { apps::jacobi_parallel(cfg(dsm::ProtocolKind::kJavaIc), jp); });
  r.jacobi_pf_s = time_run([&] { apps::jacobi_parallel(cfg(dsm::ProtocolKind::kJavaPf), jp); });
  r.asp_ic_s = time_run([&] { apps::asp_parallel(cfg(dsm::ProtocolKind::kJavaIc), ap); });
  r.asp_pf_s = time_run([&] { apps::asp_parallel(cfg(dsm::ProtocolKind::kJavaPf), ap); });
  return r;
}

int run(int argc, char** argv) {
  Cli cli("host_perf: wall-clock throughput of the simulator's host hot paths");
  cli.flag_string("label", "dev", "tag recorded with the JSON entry (e.g. before/after)")
      .flag_string("out", "", "append one JSON line to this file (empty = stdout only)")
      .flag_bool("quick", false, "small sizes for smoke runs")
      .flag_int("repeat", 1, "repeat each microbench, keep the best");
  if (!cli.parse(argc, argv)) return 0;

  const bool quick = cli.get_bool("quick");
  const int repeat = static_cast<int>(cli.get_int("repeat"));
  const int fibers = quick ? 64 : 256;
  const int rounds = quick ? 500 : 4000;
  const std::uint64_t accesses = quick ? 400'000 : 8'000'000;
  const int diff_pages = quick ? 32 : 128;
  const int diff_iters = quick ? 20 : 120;
  const int jn = quick ? 96 : 256;
  const int jsteps = quick ? 8 : 40;
  const int an = quick ? 96 : 256;

  double events_s = 0, ic_s = 0, pf_s = 0, diff_s = 0;
  for (int i = 0; i < repeat; ++i) {
    events_s = std::max(events_s, bench_events_per_sec(fibers, rounds));
    ic_s = std::max(ic_s, bench_accesses_per_sec<dsm::IcPolicy>(dsm::ProtocolKind::kJavaIc,
                                                                accesses));
    pf_s = std::max(pf_s, bench_accesses_per_sec<dsm::PfPolicy>(dsm::ProtocolKind::kJavaPf,
                                                                accesses));
    diff_s = std::max(diff_s, bench_diff_pages_per_sec(diff_pages, diff_iters));
  }
  const E2e e2e = bench_e2e(jn, jsteps, an);

  std::ostringstream js;
  js.setf(std::ios::fixed);
  js.precision(1);
  js << "{\"label\":\"" << cli.get_string("label") << "\""
     << ",\"quick\":" << (quick ? "true" : "false")
     << ",\"events_per_sec\":" << events_s
     << ",\"ic_accesses_per_sec\":" << ic_s
     << ",\"pf_accesses_per_sec\":" << pf_s
     << ",\"diff_pages_per_sec\":" << diff_s;
  js.precision(3);
  js << ",\"jacobi_ic_wall_s\":" << e2e.jacobi_ic_s
     << ",\"jacobi_pf_wall_s\":" << e2e.jacobi_pf_s
     << ",\"asp_ic_wall_s\":" << e2e.asp_ic_s
     << ",\"asp_pf_wall_s\":" << e2e.asp_pf_s
     << ",\"e2e_wall_s\":" << e2e.total()
     << ",\"peak_rss_kb\":" << peak_rss_kb() << "}";

  std::cout << "host_perf [" << cli.get_string("label") << "]\n"
            << "  events/sec        : " << static_cast<std::uint64_t>(events_s) << "\n"
            << "  ic accesses/sec   : " << static_cast<std::uint64_t>(ic_s) << "\n"
            << "  pf accesses/sec   : " << static_cast<std::uint64_t>(pf_s) << "\n"
            << "  diff pages/sec    : " << static_cast<std::uint64_t>(diff_s) << "\n"
            << "  jacobi ic/pf wall : " << e2e.jacobi_ic_s << " / " << e2e.jacobi_pf_s << " s\n"
            << "  asp    ic/pf wall : " << e2e.asp_ic_s << " / " << e2e.asp_pf_s << " s\n"
            << "  e2e wall          : " << e2e.total() << " s\n"
            << "  peak rss          : " << peak_rss_kb() << " KB\n"
            << js.str() << "\n";

  const std::string out = cli.get_string("out");
  if (!out.empty()) {
    std::ofstream f(out, std::ios::app);
    if (!f.good()) {
      std::cerr << "host_perf: cannot open " << out << "\n";
      return 1;
    }
    f << js.str() << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace hyp::bench

int main(int argc, char** argv) { return hyp::bench::run(argc, argv); }
