// google-benchmark microbenchmarks of the simulator's *real* hot paths.
//
// These measure the reproduction itself (host nanoseconds per simulated
// access), not the paper's quantities: they bound how large a --full run is
// affordable and guard against accidental fast-path regressions. The
// present-page access paths never yield, so they can run outside the engine.
#include <benchmark/benchmark.h>

#include "dsm/access.hpp"
#include "dsm/dsm.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hyp;

struct Fixture {
  cluster::Cluster cluster{cluster::ClusterParams::myrinet200(), 2};
  dsm::DsmSystem dsm;
  std::unique_ptr<dsm::ThreadCtx> t;
  dsm::Gva local_addr;

  explicit Fixture(dsm::ProtocolKind kind)
      : dsm(&cluster, std::size_t{16} << 20, kind), t(dsm.make_thread(0)) {
    local_addr = dsm.alloc(0, 4096);
  }
};

void BM_IcGetHomePage(benchmark::State& state) {
  Fixture f(dsm::ProtocolKind::kJavaIc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsm::IcPolicy::get<std::int64_t>(*f.t, f.local_addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IcGetHomePage);

void BM_PfGetHomePage(benchmark::State& state) {
  Fixture f(dsm::ProtocolKind::kJavaPf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsm::PfPolicy::get<std::int64_t>(*f.t, f.local_addr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PfGetHomePage);

void BM_IcPutHomePage(benchmark::State& state) {
  Fixture f(dsm::ProtocolKind::kJavaIc);
  std::int64_t v = 0;
  for (auto _ : state) {
    dsm::IcPolicy::put<std::int64_t>(*f.t, f.local_addr, ++v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IcPutHomePage);

void BM_FiberSwitchRoundTrip(benchmark::State& state) {
  // Cost of one simulated scheduling decision: spawn a pair of fibers that
  // yield to each other `n` times inside one engine run.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine eng;
    constexpr int kYields = 1000;
    for (int f = 0; f < 2; ++f) {
      eng.spawn("ping" + std::to_string(f), [&eng] {
        for (int i = 0; i < kYields; ++i) eng.yield();
      });
    }
    state.ResumeTiming();
    eng.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_FiberSwitchRoundTrip);

void BM_EventPostAndDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine eng;
    constexpr int kEvents = 1000;
    for (int i = 0; i < kEvents; ++i) {
      eng.post(static_cast<Time>(i), [] {});
    }
    state.ResumeTiming();
    eng.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventPostAndDispatch);

void BM_PageFetchRoundTrip(benchmark::State& state) {
  // Host cost of one full simulated remote page fetch (RPC + copy + events).
  for (auto _ : state) {
    state.PauseTiming();
    cluster::Cluster c(cluster::ClusterParams::myrinet200(), 2);
    dsm::DsmSystem d(&c, std::size_t{16} << 20, dsm::ProtocolKind::kJavaPf);
    constexpr int kPages = 64;
    const dsm::Gva base = d.alloc(0, 64 * 4096, 4096);
    c.spawn_thread(1, "fetcher", [&] {
      auto t = d.make_thread(1);
      for (int i = 0; i < kPages; ++i) {
        benchmark::DoNotOptimize(
            dsm::PfPolicy::get<std::int64_t>(*t, base + static_cast<dsm::Gva>(i) * 4096));
      }
    });
    state.ResumeTiming();
    c.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PageFetchRoundTrip);

}  // namespace

BENCHMARK_MAIN();
