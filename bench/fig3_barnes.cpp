// Figure 3: Barnes-Hut — java_pf vs. java_ic on both clusters.
// Paper result: java_pf wins, but the improvement decays (46% -> 28% on
// Myrinet) as nodes grow: fault/mprotect counts rise with communication and
// the curves flatten at high node counts.
#include "apps/barnes.hpp"
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace hyp;
  Cli cli("fig3_barnes — reproduces Figure 3 (Barnes-Hut, 16K bodies, 6 steps)");
  bench::add_sweep_flags(cli);
  bench::ObsRecorder::add_flags(cli);
  cli.flag_int("bodies", 4096, "body count (paper: 16384)")
      .flag_int("steps", 3, "time steps (paper: 6)")
      .flag_int("chunk", 128, "work-queue granularity (bodies per unit)")
      .flag_bool("full", false, "use the paper's problem size");
  if (!cli.parse(argc, argv)) return 0;

  apps::BarnesParams params;
  params.bodies = cli.get_bool("full") ? 16384 : static_cast<int>(cli.get_int("bodies"));
  params.steps = cli.get_bool("full") ? 6 : static_cast<int>(cli.get_int("steps"));
  params.chunk = static_cast<int>(cli.get_int("chunk"));

  bench::FigureSpec spec;
  spec.id = "fig3";
  spec.title = "Barnes Hut: java_pf vs. java_ic";
  spec.workload = std::to_string(params.bodies) + " bodies, " + std::to_string(params.steps) +
                  " timesteps";
  spec.run = [params](const apps::VmConfig& cfg) { return apps::barnes_parallel(cfg, params); };
  bench::ObsRecorder obs;
  obs.configure(cli, "fig3");
  bench::run_figure(spec, bench::sweep_from_cli(cli), &obs);
  return 0;
}
