// Table 2: the key DSM primitives of the Hyperion memory subsystem,
// microbenchmarked in virtual time under both protocols on both clusters.
//
// Reported per primitive: the modeled cost one call adds to the calling
// thread's timeline (loadIntoCache of a remote page, get/put hitting the
// cache, get missing it, updateMainMemory after a burst of puts,
// invalidateCache with a populated cache).
#include <cstdio>
#include <iostream>
#include <functional>

#include "common/table.hpp"
#include "dsm/access.hpp"
#include "hyperion/vm.hpp"

namespace {

using namespace hyp;

struct PrimitiveCosts {
  double load_into_cache_us;
  double get_hit_us;
  double get_miss_us;
  double put_hit_us;
  double update_main_memory_us;  // after 64 remote puts
  double invalidate_us;          // with 8 cached pages
};

template <typename P>
PrimitiveCosts measure(const cluster::ClusterParams& params) {
  PrimitiveCosts out{};
  cluster::Cluster c(params, 2);
  dsm::DsmSystem dsm(&c, std::size_t{16} << 20, P::kKind);

  c.spawn_thread(1, "probe", [&] {
    auto t = dsm.make_thread(1);
    auto& eng = c.engine();
    const std::size_t page = dsm.layout().page_bytes();
    auto elapsed_us = [&](const std::function<void()>& op) {
      t->clock.flush();
      const Time begin = eng.now();
      op();
      t->clock.flush();
      return to_micros(eng.now() - begin);
    };

    // loadIntoCache: explicit fetch of a remote page.
    const dsm::Gva prefetch_target = dsm.alloc(0, 8);
    out.load_into_cache_us = elapsed_us([&] { dsm.load_into_cache(*t, prefetch_target); });

    // get on a cached page (hit), averaged over a burst.
    constexpr int kBurst = 1000;
    out.get_hit_us = elapsed_us([&] {
                       for (int i = 0; i < kBurst; ++i) {
                         (void)P::template get<std::int64_t>(*t, prefetch_target);
                       }
                     }) /
                     kBurst;

    // get that misses (fresh remote page each time).
    const dsm::Gva miss_target = dsm.alloc(0, 8, page);
    out.get_miss_us = elapsed_us([&] { (void)P::template get<std::int64_t>(*t, miss_target); });

    // put on a cached page.
    out.put_hit_us = elapsed_us([&] {
                       for (int i = 0; i < kBurst; ++i) {
                         P::template put<std::int64_t>(*t, prefetch_target, std::int64_t(i));
                       }
                     }) /
                     kBurst;

    // updateMainMemory after 64 scattered remote puts.
    const dsm::Gva burst_base = dsm.alloc(0, 64 * 8, page);
    for (int i = 0; i < 64; ++i) {
      P::template put<std::int64_t>(*t, burst_base + static_cast<dsm::Gva>(i) * 8,
                                    std::int64_t(i));
    }
    out.update_main_memory_us = elapsed_us([&] { dsm.update_main_memory(*t); });

    // invalidateCache with 8 cached pages.
    for (int i = 0; i < 8; ++i) {
      const dsm::Gva a = dsm.alloc(0, 8, page);
      dsm.load_into_cache(*t, a);
    }
    out.invalidate_us = elapsed_us([&] { dsm.invalidate_cache(*t); });
  });
  c.run();
  return out;
}

}  // namespace

int main() {
  std::printf("# table2 — key DSM primitives (paper Table 2), modeled cost per call\n");
  std::printf("# get/put hit costs are per access; loadIntoCache/get-miss include the\n");
  std::printf("# page transfer; java_pf get-miss additionally carries the page fault.\n\n");

  Table t({"cluster", "protocol", "loadIntoCache (us)", "get hit (us)", "get miss (us)",
           "put hit (us)", "updateMainMemory (us)", "invalidateCache (us)"});
  for (const auto& params :
       {cluster::ClusterParams::myrinet200(), cluster::ClusterParams::sci450()}) {
    for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
      PrimitiveCosts costs{};
      dsm::with_policy(kind, [&](auto policy) {
        using P = decltype(policy);
        costs = measure<P>(params);
      });
      t.add_row({params.name, dsm::protocol_name(kind), fmt_double(costs.load_into_cache_us, 3),
                 fmt_double(costs.get_hit_us, 4), fmt_double(costs.get_miss_us, 3),
                 fmt_double(costs.put_hit_us, 4), fmt_double(costs.update_main_memory_us, 3),
                 fmt_double(costs.invalidate_us, 3)});
    }
  }
  t.write_pretty(std::cout);

  std::printf(
      "\nreading guide: java_ic pays ~check_cost on every hit and avoids faults on a miss;\n"
      "java_pf hits are free and its miss carries the paper's %g/%g us fault constants.\n",
      to_micros(cluster::ClusterParams::myrinet200().cpu.page_fault_cost),
      to_micros(cluster::ClusterParams::sci450().cpu.page_fault_cost));
  return 0;
}
