// Ablation: consistency model strength — why Hyperion implements *Java*
// consistency instead of sequential consistency.
//
// DSM-PM2 hosts multiple protocols (§1); this harness runs the same
// neighbour-exchange workload (each node writes its own block, then reads
// its neighbours' — the Jacobi/ASP communication skeleton) under:
//   * seqc     — sequentially consistent single-writer (Li/Hudak style):
//                every producer write must reclaim exclusive ownership,
//                recalling and invalidating reader replicas eagerly;
//   * java_ic  — Java consistency with in-line checks: writes are local,
//                consistency happens wholesale at acquire/release;
//   * java_pf  — Java consistency with page faults.
// Expectation: both Java-consistency protocols beat seqc by a wide margin —
// the relaxation is the point, detection choice is second-order.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dsm/access.hpp"
#include "dsm/dsm.hpp"
#include "dsm/erc.hpp"
#include "dsm/seqc.hpp"
#include "fig_common.hpp"
#include "sim/sync.hpp"

using namespace hyp;

namespace {

constexpr std::size_t kRegion = std::size_t{64} << 20;

// Base cluster params with the recorder's --fault-profile merged in (no-op
// when the flag is absent; docs/FAULTS.md).
cluster::ClusterParams myri_params(const bench::ObsRecorder& obs) {
  cluster::ClusterParams p = cluster::ClusterParams::myrinet200();
  obs.apply_fault(p);
  return p;
}

struct Outcome {
  double seconds;
  std::uint64_t messages;
  std::uint64_t fetches;
};

// Each node owns `cells` int64 cells; per iteration: write own block, then
// read both ring neighbours' blocks.
template <typename AccessFns>
Outcome neighbour_exchange(cluster::Cluster& c, int nodes, int cells, int iters,
                           AccessFns fns) {
  sim::SimBarrier barrier(&c.engine(), nodes);
  for (int w = 0; w < nodes; ++w) {
    c.spawn_thread(w, "node" + std::to_string(w), [&, w] {
      auto ctx = fns.make_ctx(w);
      const auto own = fns.block(w);
      const auto left = fns.block((w + nodes - 1) % nodes);
      const auto right = fns.block((w + 1) % nodes);
      std::int64_t acc = 0;
      for (int it = 0; it < iters; ++it) {
        for (int i = 0; i < cells; ++i) {
          fns.write(ctx, own + static_cast<dsm::Gva>(i) * 8,
                    static_cast<std::int64_t>(it * cells + i));
          fns.charge(ctx, 20);
        }
        fns.release(ctx);
        barrier.arrive_and_wait();
        fns.acquire(ctx);
        for (int i = 0; i < cells; ++i) {
          acc += fns.read(ctx, left + static_cast<dsm::Gva>(i) * 8);
          acc += fns.read(ctx, right + static_cast<dsm::Gva>(i) * 8);
          fns.charge(ctx, 20);
        }
        barrier.arrive_and_wait();
      }
      (void)acc;
    });
  }
  c.run();
  const auto stats = c.total_stats();
  return {to_seconds(c.engine().now()), stats.get(Counter::kMessages),
          stats.get(Counter::kPageFetches)};
}

Outcome run_java(dsm::ProtocolKind kind, int nodes, int cells, int iters,
                 bench::ObsRecorder& obs) {
  cluster::Cluster c(myri_params(obs), nodes);
  dsm::DsmSystem d(&c, kRegion, kind);
  obs.attach_cluster(c, &d);
  struct Fns {
    dsm::DsmSystem* d;
    std::vector<dsm::Gva> blocks;
    std::unique_ptr<dsm::ThreadCtx> make_ctx(int w) const { return d->make_thread(w); }
    dsm::Gva block(int w) const { return blocks[static_cast<std::size_t>(w)]; }
    std::int64_t read(std::unique_ptr<dsm::ThreadCtx>& t, dsm::Gva a) const {
      return d->kind() == dsm::ProtocolKind::kJavaIc
                 ? dsm::IcPolicy::get<std::int64_t>(*t, a)
                 : dsm::PfPolicy::get<std::int64_t>(*t, a);
    }
    void write(std::unique_ptr<dsm::ThreadCtx>& t, dsm::Gva a, std::int64_t v) const {
      if (d->kind() == dsm::ProtocolKind::kJavaIc) {
        dsm::IcPolicy::put<std::int64_t>(*t, a, v);
      } else {
        dsm::PfPolicy::put<std::int64_t>(*t, a, v);
      }
    }
    void charge(std::unique_ptr<dsm::ThreadCtx>& t, std::uint64_t n) const {
      t->clock.charge_cycles(n);
    }
    void release(std::unique_ptr<dsm::ThreadCtx>& t) const { d->on_release(*t); }
    void acquire(std::unique_ptr<dsm::ThreadCtx>& t) const { d->on_acquire(*t); }
  } fns{&d, {}};
  for (int w = 0; w < nodes; ++w) {
    fns.blocks.push_back(d.alloc(w, static_cast<std::size_t>(cells) * 8, 4096));
  }
  const Outcome o = neighbour_exchange(c, nodes, cells, iters, fns);
  obs.capture_cluster(std::string("exchange ") + dsm::protocol_name(kind), c);
  return o;
}

Outcome run_erc(int nodes, int cells, int iters, bench::ObsRecorder& obs) {
  cluster::Cluster c(myri_params(obs), nodes);
  dsm::ErcDsm d(&c, kRegion);
  obs.attach_cluster(c);
  struct Fns {
    dsm::ErcDsm* d;
    std::vector<dsm::Gva> blocks;
    std::unique_ptr<dsm::ErcThreadCtx> make_ctx(int w) const { return d->make_thread(w); }
    dsm::Gva block(int w) const { return blocks[static_cast<std::size_t>(w)]; }
    std::int64_t read(std::unique_ptr<dsm::ErcThreadCtx>& t, dsm::Gva a) const {
      return d->read<std::int64_t>(*t, a);
    }
    void write(std::unique_ptr<dsm::ErcThreadCtx>& t, dsm::Gva a, std::int64_t v) const {
      d->write<std::int64_t>(*t, a, v);
    }
    void charge(std::unique_ptr<dsm::ErcThreadCtx>& t, std::uint64_t n) const {
      t->clock.charge_cycles(n);
    }
    void release(std::unique_ptr<dsm::ErcThreadCtx>& t) const { d->on_release(*t); }
    void acquire(std::unique_ptr<dsm::ErcThreadCtx>& t) const { d->on_acquire(*t); }
  } fns{&d, {}};
  for (int w = 0; w < nodes; ++w) {
    fns.blocks.push_back(d.alloc(w, static_cast<std::size_t>(cells) * 8, 4096));
  }
  const Outcome o = neighbour_exchange(c, nodes, cells, iters, fns);
  obs.capture_cluster("exchange erc", c);
  return o;
}

Outcome run_seqc(int nodes, int cells, int iters, bench::ObsRecorder& obs) {
  cluster::Cluster c(myri_params(obs), nodes);
  dsm::SeqDsm d(&c, kRegion);
  obs.attach_cluster(c);
  struct Fns {
    dsm::SeqDsm* d;
    std::vector<dsm::Gva> blocks;
    std::unique_ptr<dsm::SeqThreadCtx> make_ctx(int w) const { return d->make_thread(w); }
    dsm::Gva block(int w) const { return blocks[static_cast<std::size_t>(w)]; }
    std::int64_t read(std::unique_ptr<dsm::SeqThreadCtx>& t, dsm::Gva a) const {
      return d->read<std::int64_t>(*t, a);
    }
    void write(std::unique_ptr<dsm::SeqThreadCtx>& t, dsm::Gva a, std::int64_t v) const {
      d->write<std::int64_t>(*t, a, v);
    }
    void charge(std::unique_ptr<dsm::SeqThreadCtx>& t, std::uint64_t n) const {
      t->clock.charge_cycles(n);
    }
    // Sequential consistency needs no acquire/release actions — coherence is
    // eager and perpetual; that eagerness is exactly what costs.
    void release(std::unique_ptr<dsm::SeqThreadCtx>& t) const { t->clock.flush(); }
    void acquire(std::unique_ptr<dsm::SeqThreadCtx>& t) const { t->clock.flush(); }
  } fns{&d, {}};
  for (int w = 0; w < nodes; ++w) {
    fns.blocks.push_back(d.alloc(w, static_cast<std::size_t>(cells) * 8, 4096));
  }
  const Outcome o = neighbour_exchange(c, nodes, cells, iters, fns);
  obs.capture_cluster("exchange seqc", c);
  return o;
}

// False-sharing scenario: every node repeatedly updates its own slot of ONE
// shared page (homed on node 0). Sequential consistency must ping-pong
// exclusive ownership for every burst; Java consistency lets each node write
// its cached copy and merges the disjoint modifications at release.
template <typename AccessFns>
Outcome false_sharing(cluster::Cluster& c, int nodes, int reps, int iters, dsm::Gva page_base,
                      AccessFns fns) {
  sim::SimBarrier barrier(&c.engine(), nodes);
  for (int w = 0; w < nodes; ++w) {
    c.spawn_thread(w, "fs" + std::to_string(w), [&, w] {
      auto ctx = fns.make_ctx(w);
      const dsm::Gva slot = page_base + static_cast<dsm::Gva>(w) * 8;
      for (int it = 0; it < iters; ++it) {
        fns.acquire(ctx);
        for (int r = 0; r < reps; ++r) {
          fns.write(ctx, slot, static_cast<std::int64_t>(it * reps + r));
          fns.charge(ctx, 20);
        }
        fns.release(ctx);
        barrier.arrive_and_wait();
      }
    });
  }
  c.run();
  const auto stats = c.total_stats();
  return {to_seconds(c.engine().now()), stats.get(Counter::kMessages),
          stats.get(Counter::kPageFetches)};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_consistency — seqc vs java_ic vs java_pf on neighbour exchange");
  cli.flag_int("nodes", 6, "cluster nodes")
      .flag_int("cells", 1024, "int64 cells per node block")
      .flag_int("iters", 20, "exchange iterations");
  bench::ObsRecorder::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsRecorder obs;
  obs.configure(cli, "ablation_consistency");

  const int nodes = static_cast<int>(cli.get_int("nodes"));
  const int cells = static_cast<int>(cli.get_int("cells"));
  const int iters = static_cast<int>(cli.get_int("iters"));

  std::printf("# ablation_consistency — why Hyperion implements Java consistency\n");
  std::printf("# myri200, %d nodes, %d cells/block, %d iterations\n\n", nodes, cells, iters);

  Table t({"protocol", "consistency", "seconds", "messages", "page fetches"});
  const Outcome sc = run_seqc(nodes, cells, iters, obs);
  t.add_row({"seqc", "sequential (eager)", fmt_double(sc.seconds, 3), fmt_u64(sc.messages),
             fmt_u64(sc.fetches)});
  const Outcome ic = run_java(dsm::ProtocolKind::kJavaIc, nodes, cells, iters, obs);
  t.add_row({"java_ic", "Java (lazy, checks)", fmt_double(ic.seconds, 3), fmt_u64(ic.messages),
             fmt_u64(ic.fetches)});
  const Outcome pf = run_java(dsm::ProtocolKind::kJavaPf, nodes, cells, iters, obs);
  t.add_row({"java_pf", "Java (lazy, faults)", fmt_double(pf.seconds, 3), fmt_u64(pf.messages),
             fmt_u64(pf.fetches)});
  const Outcome erc = run_erc(nodes, cells, iters, obs);
  t.add_row({"erc", "eager release (update)", fmt_double(erc.seconds, 3),
             fmt_u64(erc.messages), fmt_u64(erc.fetches)});
  t.write_pretty(std::cout);
  std::printf(
      "\nblock exchange: single-writer ownership amortizes over a block, so seqc\n"
      "and the Java protocols come out close; erc fetches each replica ONCE and\n"
      "then patches it in place at every release — stable sharer sets are its\n"
      "sweet spot.\n\n");

  // --- false sharing: the sequential-consistency pathology ------------------
  const int reps = 50;
  const int fs_iters = 10;
  std::printf("false sharing: %d nodes each updating their slot of ONE page, %d\n"
              "updates per round, %d rounds\n\n",
              nodes, reps, fs_iters);
  Table t2({"protocol", "seconds", "messages", "page fetches"});
  {
    cluster::Cluster c(myri_params(obs), nodes);
    dsm::SeqDsm d(&c, kRegion);
    obs.attach_cluster(c);
    const dsm::Gva base = d.alloc(0, static_cast<std::size_t>(nodes) * 8, 4096);
    struct Fns {
      dsm::SeqDsm* d;
      std::unique_ptr<dsm::SeqThreadCtx> make_ctx(int w) const { return d->make_thread(w); }
      void write(std::unique_ptr<dsm::SeqThreadCtx>& t, dsm::Gva a, std::int64_t v) const {
        d->write<std::int64_t>(*t, a, v);
      }
      void charge(std::unique_ptr<dsm::SeqThreadCtx>& t, std::uint64_t n) const {
        t->clock.charge_cycles(n);
      }
      void release(std::unique_ptr<dsm::SeqThreadCtx>& t) const { t->clock.flush(); }
      void acquire(std::unique_ptr<dsm::SeqThreadCtx>& t) const { t->clock.flush(); }
    } fns{&d};
    const Outcome o = false_sharing(c, nodes, reps, fs_iters, base, fns);
    obs.capture_cluster("false_sharing seqc", c);
    t2.add_row({"seqc", fmt_double(o.seconds, 3), fmt_u64(o.messages), fmt_u64(o.fetches)});
  }
  for (auto kind : {dsm::ProtocolKind::kJavaIc, dsm::ProtocolKind::kJavaPf}) {
    cluster::Cluster c(myri_params(obs), nodes);
    dsm::DsmSystem d(&c, kRegion, kind);
    obs.attach_cluster(c, &d);
    const dsm::Gva base = d.alloc(0, static_cast<std::size_t>(nodes) * 8, 4096);
    struct Fns {
      dsm::DsmSystem* d;
      std::unique_ptr<dsm::ThreadCtx> make_ctx(int w) const { return d->make_thread(w); }
      void write(std::unique_ptr<dsm::ThreadCtx>& t, dsm::Gva a, std::int64_t v) const {
        if (d->kind() == dsm::ProtocolKind::kJavaIc) {
          dsm::IcPolicy::put<std::int64_t>(*t, a, v);
        } else {
          dsm::PfPolicy::put<std::int64_t>(*t, a, v);
        }
      }
      void charge(std::unique_ptr<dsm::ThreadCtx>& t, std::uint64_t n) const {
        t->clock.charge_cycles(n);
      }
      void release(std::unique_ptr<dsm::ThreadCtx>& t) const { d->on_release(*t); }
      void acquire(std::unique_ptr<dsm::ThreadCtx>& t) const { d->on_acquire(*t); }
    } fns{&d};
    const Outcome o = false_sharing(c, nodes, reps, fs_iters, base, fns);
    obs.capture_cluster(std::string("false_sharing ") + dsm::protocol_name(kind), c);
    t2.add_row({dsm::protocol_name(kind), fmt_double(o.seconds, 3), fmt_u64(o.messages),
                fmt_u64(o.fetches)});
  }
  t2.write_pretty(std::cout);
  obs.finish();
  std::printf(
      "\nexpected shape: seqc ping-pongs exclusive ownership between the nodes\n"
      "sharing the page (recall + invalidate per burst); Java consistency\n"
      "writes locally and merges the disjoint fields at release — the model\n"
      "relaxation, not the detection mechanism, is what wins here.\n");
  return 0;
}
