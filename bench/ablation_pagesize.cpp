// Ablation: the §3.1 prefetch claim — "loadIntoCache actually retrieves the
// whole page on which the object is located, which results in a pre-fetching
// effect for other objects located on the same page".
//
// A reader node streams over many small consecutive objects allocated by a
// remote node. Sweeping the DSM page size changes how many neighbours each
// miss prefetches: fetch counts fall linearly with page size while bytes
// moved stay constant; total time has a sweet spot (tiny pages pay per-miss
// latency, huge pages pay transfer time they may not use).
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"
#include "hyperion/japi.hpp"
#include "hyperion/vm.hpp"

using namespace hyp;

namespace {

struct Outcome {
  double seconds;
  std::uint64_t fetches;
  std::uint64_t bytes;
  std::uint64_t faults;
};

Outcome stream_objects(std::size_t page_bytes, int objects, int passes,
                       dsm::ProtocolKind protocol, bench::ObsRecorder& obs) {
  hyperion::VmConfig cfg;
  cfg.cluster = cluster::ClusterParams::myrinet200();
  cfg.cluster.page_bytes = page_bytes;
  cfg.nodes = 2;
  cfg.protocol = protocol;
  cfg.region_bytes = std::size_t{64} << 20;
  obs.attach(cfg);
  hyperion::HyperionVM vm(cfg);
  // The objects are homed on node 0 (main); pin the reader to node 1 so
  // every first touch is remote.
  vm.set_balancer(std::make_unique<hyperion::PinnedBalancer>(1));

  vm.run_main([&](hyperion::JavaEnv& main) {
    dsm::with_policy(protocol, [&](auto policy) {
      using P = decltype(policy);
      hyperion::Mem<P> mem(main.ctx());
      // Consecutive 32-byte "objects" (4 fields), homed on node 0.
      auto fields = main.new_array<std::int64_t>(objects * 4);
      for (int i = 0; i < objects * 4; ++i) mem.aput(fields, i, static_cast<std::int64_t>(i));

      auto reader = main.start_thread("reader", [=](hyperion::JavaEnv& env) {
        hyperion::Mem<P> m(env.ctx());
        std::int64_t acc = 0;
        for (int pass = 0; pass < passes; ++pass) {
          for (int i = 0; i < objects * 4; ++i) {
            acc += m.aget(fields, i);
            env.charge_cycles(8);
          }
          // Re-cross a monitor so each pass starts cold (invalidated).
          env.synchronized(fields.header, [] {});
        }
      });
      main.join(reader);
    });
  });

  const auto stats = vm.stats();
  apps::RunResult rr;
  rr.elapsed = vm.elapsed();
  rr.stats = stats;
  obs.capture_run("page_bytes=" + std::to_string(page_bytes), rr,
                  dsm::protocol_name(protocol), cfg.nodes);
  return {to_seconds(vm.elapsed()), stats.get(Counter::kPageFetches),
          stats.get(Counter::kPageFetchBytes), stats.get(Counter::kPageFaults)};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_pagesize — §3.1 page-granularity prefetch effect");
  cli.flag_int("objects", 4096, "32-byte objects allocated consecutively")
      .flag_int("passes", 4, "cold passes over the object set")
      .flag_string("protocol", "java_pf", "java_ic or java_pf");
  bench::ObsRecorder::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsRecorder obs;
  obs.configure(cli, "ablation_pagesize");

  const auto protocol = dsm::protocol_by_name(cli.get_string("protocol"));
  const int objects = static_cast<int>(cli.get_int("objects"));
  const int passes = static_cast<int>(cli.get_int("passes"));

  std::printf("# ablation_pagesize — whole-page loads prefetch same-page objects (§3.1)\n");
  std::printf("# myri200, 2 nodes, %d consecutive 32-byte objects, %d cold passes, %s\n\n",
              objects, passes, dsm::protocol_name(protocol));

  Table t({"page bytes", "seconds", "page fetches", "bytes moved", "faults",
           "objects/fetch"});
  for (std::size_t page : {512ul, 1024ul, 2048ul, 4096ul, 8192ul, 16384ul}) {
    const Outcome o = stream_objects(page, objects, passes, protocol, obs);
    const double per_fetch =
        o.fetches != 0 ? static_cast<double>(objects) * passes / static_cast<double>(o.fetches)
                       : 0.0;
    t.add_row({fmt_u64(page), fmt_double(o.seconds, 4), fmt_u64(o.fetches), fmt_u64(o.bytes),
               fmt_u64(o.faults), fmt_double(per_fetch, 1)});
  }
  t.write_pretty(std::cout);
  obs.finish();
  std::printf("\nexpected shape: fetches (and faults) halve as the page doubles —\n"
              "the same-page neighbours ride along for free.\n");
  return 0;
}
