// Figure 2: Jacobi — java_pf vs. java_ic on both clusters.
// Paper result: java_pf wins by ~38% on Myrinet (the smallest of the four
// object-intensive apps: double-precision fp work dilutes the checks).
#include "apps/jacobi.hpp"
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace hyp;
  Cli cli("fig2_jacobi — reproduces Figure 2 (Jacobi 1024x1024, 100 steps)");
  bench::add_sweep_flags(cli);
  bench::ObsRecorder::add_flags(cli);
  cli.flag_int("n", 512, "mesh edge (paper: 1024)")
      .flag_int("steps", 50, "time steps (paper: 100)")
      .flag_bool("full", false, "use the paper's problem size");
  if (!cli.parse(argc, argv)) return 0;

  apps::JacobiParams params;
  params.n = cli.get_bool("full") ? 1024 : static_cast<int>(cli.get_int("n"));
  params.steps = cli.get_bool("full") ? 100 : static_cast<int>(cli.get_int("steps"));

  bench::FigureSpec spec;
  spec.id = "fig2";
  spec.title = "Jacobi: java_pf vs. java_ic";
  spec.workload = std::to_string(params.n) + "x" + std::to_string(params.n) + " mesh, " +
                  std::to_string(params.steps) + " steps";
  spec.run = [params](const apps::VmConfig& cfg) { return apps::jacobi_parallel(cfg, params); };
  bench::ObsRecorder obs;
  obs.configure(cli, "fig2");
  bench::run_figure(spec, bench::sweep_from_cli(cli), &obs);
  return 0;
}
